"""An in-order core model (the §4.2 contrast).

The paper positions scale-out workloads between two bad fits: "modern
mainstream processors offer excessively complex cores" but "niche
processors offer excessively simple (e.g., in-order) cores that cannot
leverage the available ILP and MLP in scale-out workloads".  This model
provides that second endpoint: a scoreboarded in-order pipeline that
issues up to ``width`` micro-ops per cycle strictly in program order,
stalling whenever the next micro-op's operands are not ready.

Memory-level parallelism is limited to what in-order issue exposes:
independent loads that happen to be adjacent in program order can
overlap (the scoreboard does not block on a miss until a consumer
needs the value), but program order caps how far ahead the core sees.

The model shares the MemoryHierarchy/trace interfaces of the
out-of-order :class:`~repro.uarch.core.Core`, so the comparison
(``repro.core.experiments.ablations.core_aggressiveness``) swaps cores
under identical workloads and memory systems.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.uarch.branch import BranchPredictor
from repro.uarch.core import CoreResult
from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.params import MachineParams
from repro.uarch.uop import MicroOp, OpKind


class InOrderCore:
    """Scoreboarded in-order pipeline over the same memory hierarchy."""

    def __init__(
        self,
        params: MachineParams,
        hierarchy: MemoryHierarchy | None = None,
        core_id: int = 0,
        scoreboard_entries: int = 4,
    ) -> None:
        self.params = params
        self.core_id = core_id
        self.hierarchy = hierarchy if hierarchy is not None else MemoryHierarchy(
            params, core_id=core_id
        )
        self.branch_predictor = BranchPredictor()
        self.scoreboard_entries = scoreboard_entries
        self._cycle = 0

    def run(self, traces: Iterable[Iterator[MicroOp]]) -> CoreResult:
        """Execute the trace(s) in order; returns the same counter set."""
        hier = self.hierarchy
        predictor = self.branch_predictor
        params = self.params
        width = min(2, params.width)  # in-order niche cores are narrow
        line_shift = params.line_bytes.bit_length() - 1
        mispredict_penalty = params.branch_mispredict_penalty

        result = CoreResult(per_thread_instructions=[])
        completion: dict[tuple[int, int], int] = {}  # (tid, seq) -> cycle
        outstanding: list[int] = []  # completion cycles of in-flight loads

        now = self._cycle
        start = now
        issued_this_cycle = 0
        commit_cycles: set[int] = set()
        superq_busy = 0
        superq_area = 0
        superq_mark = now

        def drain_outstanding(up_to: int) -> None:
            nonlocal superq_busy, superq_area, superq_mark
            if up_to <= superq_mark:
                outstanding[:] = [c for c in outstanding if c > up_to]
                return
            t = superq_mark
            pending = sorted(outstanding)
            index = 0
            while t < up_to and index < len(pending):
                segment_end = min(pending[index], up_to)
                if segment_end > t:
                    live = len(pending) - index
                    superq_busy += segment_end - t
                    superq_area += (segment_end - t) * live
                    t = segment_end
                if pending[index] <= up_to:
                    index += 1
            superq_mark = up_to
            outstanding[:] = [c for c in pending if c > up_to]

        for tid, trace in enumerate(traces):
            last_line = -1
            fetch_barrier = 0  # pipeline flushes stall all younger issue
            for uop in trace:
                # Program-order issue: never before the previous issue slot.
                ready = max(now, fetch_barrier)
                for dep in uop.deps:
                    done = completion.get((tid, dep))
                    if done is not None and done > ready:
                        ready = done
                # Instruction fetch.
                line = uop.pc >> line_shift
                if line != last_line:
                    last_line = line
                    fetch = hier.access(uop.pc, False, True, uop.is_os,
                                        now=ready)
                    hier.prefetch_instruction(uop.pc)
                    if fetch.level != "l1":
                        ready += fetch.latency
                        result.l1i_misses += 0  # counted via hierarchy delta
                # Scoreboard capacity: wait for the oldest load if full.
                if len(outstanding) >= self.scoreboard_entries:
                    ready = max(ready, min(outstanding))
                drain_outstanding(ready)

                if uop.kind == OpKind.LOAD:
                    res = hier.access(uop.addr, False, False, uop.is_os,
                                      now=ready)
                    done = ready + res.latency
                    if res.off_core:
                        outstanding.append(done)
                        result.superq_requests += 1
                    result.loads += 1
                elif uop.kind == OpKind.STORE:
                    hier.access(uop.addr, True, False, uop.is_os, now=ready)
                    done = ready + 1
                    result.stores += 1
                else:
                    done = ready + params.alu_latency
                    if uop.kind == OpKind.BRANCH:
                        result.branches += 1
                        mispredicted, btb_missed = predictor.predict_and_update(
                            uop.pc, uop.taken, uop.target
                        )
                        if mispredicted:
                            result.branch_mispredicts += 1
                            fetch_barrier = done + mispredict_penalty
                        elif btb_missed:
                            fetch_barrier = done + 8
                completion[(tid, uop.seq)] = done
                if len(completion) > 4096:
                    # Old results can no longer be referenced.
                    for key in list(completion)[:2048]:
                        del completion[key]
                # Issue-slot bookkeeping: `width` issues per cycle.
                if ready == now:
                    issued_this_cycle += 1
                    if issued_this_cycle >= width:
                        now += 1
                        issued_this_cycle = 0
                else:
                    now = ready
                    issued_this_cycle = 1
                commit_cycles.add(done)
                result.instructions += 1
                if uop.is_os:
                    result.os_instructions += 1
            result.per_thread_instructions.append(
                result.instructions - sum(result.per_thread_instructions)
            )
        end = max([now] + list(commit_cycles)) if commit_cycles else now
        drain_outstanding(end)
        self._cycle = end
        result.cycles = max(1, end - start)
        result.committing_cycles = min(len(commit_cycles), result.cycles)
        result.stalled_cycles = result.cycles - result.committing_cycles
        result.superq_busy_cycles = superq_busy
        result.mlp = superq_area / superq_busy if superq_busy else 0.0
        result.memory_cycles = min(result.cycles, superq_busy)
        return result

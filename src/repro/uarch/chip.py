"""Multi-core chip: private L1/L2 per core, shared LLC, DRAM, directory.

The paper runs workloads on four active cores of a six-core chip (§3.1),
and measures read-write sharing by splitting threads across two sockets
(§3.1).  The chip model wires per-core hierarchies to one shared LLC,
one set of memory channels, and one last-writer directory.

Timing interleave: cores execute their traces in round-robin *segments*
(a segment is one burst of micro-ops from that thread).  Within a
segment, a core runs alone; across segments, all cache, directory, and
bandwidth state is shared.  This captures the capacity, sharing, and
bandwidth interactions the experiments measure without simulating
cycle-level inter-core arbitration (which the paper's own counter
methodology cannot observe either).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.uarch.cache import Cache
from repro.uarch.coherence import LastWriterDirectory
from repro.uarch.core import Core, CoreResult
from repro.uarch.dram import MemoryChannels
from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.params import MachineParams
from repro.uarch.uop import MicroOp


@dataclass
class ChipResult:
    """Aggregate of the per-core results of one chip execution."""

    per_core: list[CoreResult] = field(default_factory=list)

    @property
    def cycles(self) -> int:
        """Wall-clock cycles: the longest core occupies the chip."""
        return max((r.cycles for r in self.per_core), default=0)

    @property
    def total_cycles(self) -> int:
        return sum(r.cycles for r in self.per_core)

    @property
    def instructions(self) -> int:
        return sum(r.instructions for r in self.per_core)

    def summed(self) -> CoreResult:
        total = CoreResult()
        for r in self.per_core:
            for name in (
                "cycles",
                "instructions",
                "os_instructions",
                "committing_cycles",
                "committing_cycles_os",
                "stalled_cycles",
                "stalled_cycles_os",
                "memory_cycles",
                "superq_busy_cycles",
                "superq_requests",
                "loads",
                "stores",
                "branches",
                "branch_mispredicts",
                "l1i_misses",
                "l1i_misses_os",
                "l2i_misses",
                "l2i_misses_os",
                "l1d_misses",
                "l2_demand_hits",
                "l2_demand_accesses",
                "llc_misses",
                "llc_data_refs",
                "remote_dirty_hits",
                "remote_dirty_hits_os",
                "offchip_bytes",
                "offchip_bytes_os",
            ):
                setattr(total, name, getattr(total, name) + getattr(r, name))
        busy = sum(r.superq_busy_cycles for r in self.per_core)
        if busy:
            total.mlp = (
                sum(r.mlp * r.superq_busy_cycles for r in self.per_core) / busy
            )
        return total


class Chip:
    """A CMP with ``active_cores`` cores sharing LLC/memory/directory."""

    def __init__(self, params: MachineParams, num_cores: int | None = None) -> None:
        self.params = params
        self.num_cores = num_cores if num_cores is not None else params.active_cores
        self.llc = Cache("LLC", params.llc)
        self.dram = MemoryChannels(
            params.memory_channels, params.peak_bandwidth_bytes_per_s, params.line_bytes
        )
        # Two sockets: the first half of the cores on socket 0 (§3.1).
        self.directory = LastWriterDirectory(
            params.line_bytes, cores_per_socket=max(1, self.num_cores // 2)
        )
        self.cores = [
            Core(
                params,
                MemoryHierarchy(
                    params,
                    core_id=i,
                    shared_llc=self.llc,
                    dram=self.dram,
                    directory=self.directory,
                ),
                core_id=i,
            )
            for i in range(self.num_cores)
        ]
        for core in self.cores:
            self.directory.attach_core(
                core.core_id, core.hierarchy.invalidate_private
            )

    def run_segments(
        self, per_core_segments: Sequence[Sequence[Iterator[MicroOp]]]
    ) -> ChipResult:
        """Round-robin execution of per-core trace segments."""
        if len(per_core_segments) > self.num_cores:
            raise ValueError(
                f"{len(per_core_segments)} traces for {self.num_cores} cores"
            )
        result = ChipResult(per_core=[CoreResult() for _ in per_core_segments])
        queues = [list(segs) for segs in per_core_segments]
        round_index = 0
        while any(queues):
            for core_index, queue in enumerate(queues):
                if not queue:
                    continue
                segment = queue.pop(0)
                partial = self.cores[core_index].run([segment])
                _accumulate(result.per_core[core_index], partial)
            round_index += 1
        return result

    def run(self, per_core_traces: Sequence[Iterator[MicroOp]]) -> ChipResult:
        """Run one whole trace per core (single segment each)."""
        return self.run_segments([[t] for t in per_core_traces])


def _accumulate(total: CoreResult, part: CoreResult) -> None:
    busy_before = total.superq_busy_cycles
    for name in (
        "cycles",
        "instructions",
        "os_instructions",
        "committing_cycles",
        "committing_cycles_os",
        "stalled_cycles",
        "stalled_cycles_os",
        "memory_cycles",
        "superq_busy_cycles",
        "superq_requests",
        "loads",
        "stores",
        "branches",
        "branch_mispredicts",
        "l1i_misses",
        "l1i_misses_os",
        "l2i_misses",
        "l2i_misses_os",
        "l1d_misses",
        "l2_demand_hits",
        "l2_demand_accesses",
        "llc_misses",
        "llc_data_refs",
        "remote_dirty_hits",
        "remote_dirty_hits_os",
        "offchip_bytes",
        "offchip_bytes_os",
    ):
        setattr(total, name, getattr(total, name) + getattr(part, name))
    busy_total = total.superq_busy_cycles
    if busy_total:
        total.mlp = (
            total.mlp * busy_before + part.mlp * part.superq_busy_cycles
        ) / busy_total

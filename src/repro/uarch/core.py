"""Cycle-approximate out-of-order core.

The model captures the structures the paper's analysis depends on:

* 4-wide fetch/dispatch/issue/commit, 128-entry ROB, 36 reservation
  stations, 48/32-entry load/store queues (Table 1);
* instruction fetch through the L1-I with next-line prefetch — I-cache
  misses stall the frontend (Fig. 2's mechanism);
* true-dependence-limited issue (ILP) and super-queue-limited off-core
  memory parallelism (MLP, Fig. 3);
* a branch predictor whose mispredictions charge a frontend redirect
  penalty (the wrong-path flushes of §4's PARSEC/SPECint discussion);
* in-order commit with the §3.1 cycle classification: a cycle Commits if
  at least one instruction retires, else it is Stalled; Memory cycles
  are super-queue-busy cycles plus L2-instruction-hit and TLB stalls.

Execution consumes pre-generated micro-op traces (one per hardware
thread; two for SMT) produced by the workloads in :mod:`repro.apps`.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.uarch.branch import BranchPredictor
from repro.uarch.counters import COUNTER_NAMES, CounterSet
from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.params import MachineParams
from repro.uarch.uop import MicroOp, OpKind


class _Entry:
    """ROB entry."""

    __slots__ = ("uop", "completed", "issued", "ndeps", "waiters", "is_load", "hw_tid")

    def __init__(self, uop: MicroOp, hw_tid: int = 0) -> None:
        self.uop = uop
        self.completed = False
        self.issued = False
        self.ndeps = 0
        self.waiters: list[_Entry] | None = None
        self.is_load = uop.kind == OpKind.LOAD
        self.hw_tid = hw_tid


class _ThreadState:
    """Frontend state of one hardware thread."""

    __slots__ = (
        "trace",
        "stall_until",
        "pending",
        "last_line",
        "exhausted",
        "inflight",
        "last_is_os",
    )

    def __init__(self, trace: Iterator[MicroOp]) -> None:
        self.trace = trace
        self.stall_until = 0
        self.pending: MicroOp | None = None
        self.last_line = -1
        self.exhausted = False
        self.inflight: dict[int, _Entry] = {}
        self.last_is_os = False


@dataclass
class CoreResult:
    """Counters gathered over one measured execution."""

    cycles: int = 0
    instructions: int = 0
    os_instructions: int = 0
    committing_cycles: int = 0
    committing_cycles_os: int = 0
    stalled_cycles: int = 0
    stalled_cycles_os: int = 0
    memory_cycles: int = 0
    superq_busy_cycles: int = 0
    superq_requests: int = 0
    mlp: float = 0.0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    l1i_misses: int = 0
    l1i_misses_os: int = 0
    l2i_misses: int = 0
    l2i_misses_os: int = 0
    l1d_misses: int = 0
    l2_demand_hits: int = 0
    l2_demand_accesses: int = 0
    llc_misses: int = 0
    llc_data_refs: int = 0
    remote_dirty_hits: int = 0
    remote_dirty_hits_os: int = 0
    offchip_bytes: int = 0
    offchip_bytes_os: int = 0
    per_thread_instructions: list[int] = field(default_factory=list)

    def to_counters(self) -> CounterSet:
        c = CounterSet()
        for name in COUNTER_NAMES:
            c[name] = float(getattr(self, name))
        return c


class Core:
    """One out-of-order core executing 1 (baseline) or 2 (SMT) threads."""

    def __init__(
        self,
        params: MachineParams,
        hierarchy: MemoryHierarchy | None = None,
        core_id: int = 0,
    ) -> None:
        self.params = params
        self.core_id = core_id
        self.hierarchy = hierarchy if hierarchy is not None else MemoryHierarchy(
            params, core_id=core_id
        )
        self.branch_predictor = BranchPredictor()
        self._cycle = 0

    # ------------------------------------------------------------------
    def run(
        self,
        traces: Iterable[Iterator[MicroOp]],
        max_cycles: int | None = None,
    ) -> CoreResult:
        """Execute the given per-thread traces to completion."""
        params = self.params
        hier = self.hierarchy
        predictor = self.branch_predictor
        width = params.width
        rob_capacity = params.rob_entries
        rs_capacity = params.reservation_stations
        load_buffer = params.load_buffer
        line_shift = params.line_bytes.bit_length() - 1
        l1i_lat = params.l1i.latency
        alu_lat = params.alu_latency
        mispredict_penalty = params.branch_mispredict_penalty

        threads = [_ThreadState(iter(t)) for t in traces]
        nthreads = len(threads)
        if nthreads == 0:
            return CoreResult()

        # Super-queue occupancy, tracked inline for speed (the standalone
        # SuperQueue class is used by unit tests; here we integrate the
        # same statistics without per-cycle calls).
        superq_capacity = params.mshr_entries
        superq: list[int] = []  # heap of completion cycles
        superq_busy = 0
        superq_area = 0  # sum of occupancy over busy cycles
        superq_last = 0
        superq_requests = 0

        rob: deque[_Entry] = deque()
        ready: deque[_Entry] = deque()
        waiting = 0  # dispatched but not issued (reservation stations)
        outstanding_loads = 0

        completing: dict[int, list[_Entry]] = {}
        event_heap: list[int] = []

        result = CoreResult(per_thread_instructions=[0] * nthreads)
        baseline_hier = _HierarchySnapshot(hier)
        baseline_branch = (predictor.stats.branches, predictor.stats.mispredicts)

        cycle = self._cycle
        start_cycle = cycle
        fetch_turn = 0

        def superq_advance(now: int) -> None:
            nonlocal superq_busy, superq_area, superq_last
            if now <= superq_last:
                return
            t = superq_last
            superq_last = now
            while superq and t < now:
                head = superq[0]
                if head > now:
                    width_c = now - t
                    superq_busy += width_c
                    superq_area += width_c * len(superq)
                    t = now
                    break
                if head > t:
                    width_c = head - t
                    superq_busy += width_c
                    superq_area += width_c * len(superq)
                    t = head
                heapq.heappop(superq)
            if superq and t < now:
                width_c = now - t
                superq_busy += width_c
                superq_area += width_c * len(superq)

        while True:
            if max_cycles is not None and cycle - start_cycle >= max_cycles:
                break
            # ---- wakeup completions scheduled for this cycle ----------
            if event_heap and event_heap[0] <= cycle:
                while event_heap and event_heap[0] <= cycle:
                    when = heapq.heappop(event_heap)
                    for entry in completing.pop(when, ()):  # noqa: B909
                        entry.completed = True
                        if entry.is_load:
                            outstanding_loads -= 1
                        if entry.waiters:
                            for waiter in entry.waiters:
                                waiter.ndeps -= 1
                                if waiter.ndeps == 0 and not waiter.issued:
                                    ready.append(waiter)

            # ---- commit (in order, up to width) ------------------------
            committed_this_cycle = 0
            first_commit_os = False
            while rob and committed_this_cycle < width:
                head = rob[0]
                if not head.completed:
                    break
                rob.popleft()
                uop = head.uop
                tstate = threads[head.hw_tid]
                tstate.inflight.pop(uop.seq, None)
                if committed_this_cycle == 0:
                    first_commit_os = uop.is_os
                committed_this_cycle += 1
                result.instructions += 1
                result.per_thread_instructions[head.hw_tid] += 1
                if uop.is_os:
                    result.os_instructions += 1

            if committed_this_cycle:
                result.committing_cycles += 1
                if first_commit_os:
                    result.committing_cycles_os += 1
            else:
                result.stalled_cycles += 1
                if rob:
                    if rob[0].uop.is_os:
                        result.stalled_cycles_os += 1
                elif threads[fetch_turn % nthreads].last_is_os:
                    result.stalled_cycles_os += 1

            # ---- issue (up to width ready micro-ops) -------------------
            issued = 0
            while ready and issued < width:
                entry = ready[0]
                uop = entry.uop
                kind = uop.kind
                if kind == OpKind.LOAD:
                    if outstanding_loads >= load_buffer:
                        break
                    if len(superq) >= superq_capacity:
                        superq_advance(cycle)
                    if len(superq) >= superq_capacity:
                        # Cannot start another off-core miss; conservatively
                        # wait (we do not know hit/miss before access).
                        break
                    ready.popleft()
                    latency, _level, off_core, _ = hier.access_timed(
                        uop.addr, False, False, uop.is_os, cycle)
                    done = cycle + latency
                    outstanding_loads += 1
                    if off_core:
                        superq_advance(cycle)
                        heapq.heappush(superq, done)
                        superq_requests += 1
                elif kind == OpKind.STORE:
                    ready.popleft()
                    # Stores drain through the store buffer; commit is not
                    # held up by their miss latency, but the access still
                    # updates cache state, bandwidth, and the directory.
                    hier.access_timed(uop.addr, True, False, uop.is_os, cycle)
                    done = cycle + 1
                else:  # ALU or BRANCH
                    ready.popleft()
                    done = cycle + alu_lat
                entry.issued = True
                waiting -= 1
                issued += 1
                bucket = completing.get(done)
                if bucket is None:
                    completing[done] = [entry]
                    heapq.heappush(event_heap, done)
                else:
                    bucket.append(entry)

            # ---- fetch + dispatch --------------------------------------
            dispatched = 0
            attempts = 0
            while (
                dispatched < width
                and len(rob) < rob_capacity
                and waiting < rs_capacity
                and attempts < nthreads
            ):
                hw_tid = fetch_turn % nthreads
                tstate = threads[hw_tid]
                fetch_turn += 1
                attempts += 1
                if tstate.exhausted or tstate.stall_until > cycle:
                    continue
                attempts = 0  # this thread can supply uops this cycle
                while (
                    dispatched < width
                    and len(rob) < rob_capacity
                    and waiting < rs_capacity
                    and tstate.stall_until <= cycle
                ):
                    uop = tstate.pending
                    if uop is not None:
                        tstate.pending = None
                    else:
                        uop = next(tstate.trace, None)
                        if uop is None:
                            tstate.exhausted = True
                            break
                        line = uop.pc >> line_shift
                        if line != tstate.last_line:
                            tstate.last_line = line
                            latency, level, off_core, _ = hier.access_timed(
                                uop.pc, False, True, uop.is_os, cycle)
                            hier.prefetch_instruction(uop.pc)
                            if level != "l1":
                                tstate.stall_until = cycle + latency
                                if off_core:
                                    superq_advance(cycle)
                                    heapq.heappush(superq, tstate.stall_until)
                                    superq_requests += 1
                                tstate.pending = uop
                                break
                        if uop.kind == OpKind.BRANCH:
                            result.branches += 1
                            mispredicted, btb_missed = predictor.predict_and_update(
                                uop.pc, uop.taken, uop.target
                            )
                            if mispredicted:
                                result.branch_mispredicts += 1
                                tstate.stall_until = cycle + mispredict_penalty
                                # The branch itself still dispatches below.
                            elif btb_missed:
                                # Correct direction, unknown target: the
                                # frontend re-steers once the target is
                                # computed at decode/execute.
                                tstate.stall_until = cycle + 8
                    # Dispatch into ROB.
                    entry = _Entry(uop, hw_tid)
                    tstate.last_is_os = uop.is_os
                    if uop.kind == OpKind.LOAD:
                        result.loads += 1
                    elif uop.kind == OpKind.STORE:
                        result.stores += 1
                    inflight = tstate.inflight
                    for dep in uop.deps:
                        producer = inflight.get(dep)
                        if producer is not None and not producer.completed:
                            entry.ndeps += 1
                            if producer.waiters is None:
                                producer.waiters = [entry]
                            else:
                                producer.waiters.append(entry)
                    inflight[uop.seq] = entry
                    rob.append(entry)
                    waiting += 1
                    dispatched += 1
                    if entry.ndeps == 0:
                        ready.append(entry)
                if tstate.pending is not None or tstate.exhausted:
                    continue

            # ---- termination / idle-cycle skipping ---------------------
            if not rob and all(t.exhausted for t in threads):
                cycle += 1
                break

            if (
                committed_this_cycle == 0
                and issued == 0
                and dispatched == 0
            ):
                candidates = []
                if event_heap:
                    candidates.append(event_heap[0])
                for t in threads:
                    if not t.exhausted and t.stall_until > cycle:
                        candidates.append(t.stall_until)
                if candidates:
                    target = min(candidates)
                    if max_cycles is not None:
                        # The skip may not jump past the cycle budget:
                        # an uncapped fast-forward would credit stalled
                        # cycles beyond the requested window (and report
                        # cycles > max_cycles for the bounded run).
                        target = min(target, start_cycle + max_cycles)
                    if target > cycle + 1:
                        skipped = target - cycle - 1
                        result.stalled_cycles += skipped
                        if rob:
                            if rob[0].uop.is_os:
                                result.stalled_cycles_os += skipped
                        elif threads[fetch_turn % nthreads].last_is_os:
                            result.stalled_cycles_os += skipped
                        cycle = target - 1
                else:
                    raise RuntimeError(
                        "core deadlock: nothing in flight but trace not done"
                    )
            cycle += 1

        superq_advance(cycle)
        self._cycle = cycle

        result.cycles = result.committing_cycles + result.stalled_cycles
        result.superq_busy_cycles = superq_busy
        result.superq_requests = superq_requests
        result.mlp = superq_area / superq_busy if superq_busy else 0.0
        result.memory_cycles = min(
            result.cycles,
            superq_busy
            + (hier.l2_instr_hit_stalls - baseline_hier.l2_instr_hit_stalls)
            + (hier.itlb_miss_stalls - baseline_hier.itlb_miss_stalls)
            + (hier.stlb_miss_stalls - baseline_hier.stlb_miss_stalls),
        )
        baseline_hier.apply_delta(result, hier)
        result.branches = predictor.stats.branches - baseline_branch[0]
        result.branch_mispredicts = predictor.stats.mispredicts - baseline_branch[1]
        return result


class _HierarchySnapshot:
    """Counter snapshot so ``run`` reports deltas over its own window."""

    def __init__(self, hier: MemoryHierarchy) -> None:
        self.l1i_misses = hier.l1i.stats.inst_misses
        self.l1i_misses_os = hier.l1i.stats.os_inst_misses
        self.l2i_misses = hier.l2.stats.inst_misses
        self.l2i_misses_os = hier.l2.stats.os_inst_misses
        self.l1d_misses = hier.l1d.stats.data_misses
        self.l2_demand_hits = hier.l2.stats.demand_hits
        self.l2_demand_accesses = hier.l2.stats.demand_accesses
        self.llc_misses = hier.llc.stats.demand_misses
        self.llc_data_refs = hier.directory.stats.llc_data_refs
        self.remote_dirty_hits = hier.directory.stats.remote_dirty_hits
        self.remote_dirty_hits_os = hier.directory.stats.os_remote_dirty_hits
        self.offchip_bytes = hier.dram.stats.total_bytes
        self.offchip_bytes_os = hier.dram.stats.os_bytes
        self.l2_instr_hit_stalls = hier.l2_instr_hit_stalls
        self.itlb_miss_stalls = hier.itlb_miss_stalls
        self.stlb_miss_stalls = hier.stlb_miss_stalls

    def apply_delta(self, result: CoreResult, hier: MemoryHierarchy) -> None:
        result.l1i_misses = hier.l1i.stats.inst_misses - self.l1i_misses
        result.l1i_misses_os = hier.l1i.stats.os_inst_misses - self.l1i_misses_os
        result.l2i_misses = hier.l2.stats.inst_misses - self.l2i_misses
        result.l2i_misses_os = hier.l2.stats.os_inst_misses - self.l2i_misses_os
        result.l1d_misses = hier.l1d.stats.data_misses - self.l1d_misses
        result.l2_demand_hits = hier.l2.stats.demand_hits - self.l2_demand_hits
        result.l2_demand_accesses = (
            hier.l2.stats.demand_accesses - self.l2_demand_accesses
        )
        result.llc_misses = hier.llc.stats.demand_misses - self.llc_misses
        result.llc_data_refs = hier.directory.stats.llc_data_refs - self.llc_data_refs
        result.remote_dirty_hits = (
            hier.directory.stats.remote_dirty_hits - self.remote_dirty_hits
        )
        result.remote_dirty_hits_os = (
            hier.directory.stats.os_remote_dirty_hits - self.remote_dirty_hits_os
        )
        result.offchip_bytes = hier.dram.stats.total_bytes - self.offchip_bytes
        result.offchip_bytes_os = hier.dram.stats.os_bytes - self.offchip_bytes_os

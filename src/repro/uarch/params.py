"""Machine parameters (the paper's Table 1).

The baseline configuration mirrors the 32 nm Intel Xeon X5670 used in the
paper: 6 out-of-order cores at 2.93 GHz, 4-wide issue/retire, 128-entry
reorder buffer, 48/32-entry load/store buffers, 36 reservation stations,
32 KB split L1 caches (4-cycle), 256 KB per-core L2 (6-cycle), a 12 MB
shared LLC (29-cycle), and 3 DDR3 channels delivering up to 32 GB/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheParams:
    """Geometry and latency of one cache level."""

    size_bytes: int
    assoc: int
    latency: int
    line_bytes: int = 64

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise ValueError(
                f"cache size {self.size_bytes} not divisible into "
                f"{self.assoc}-way sets of {self.line_bytes}B lines"
            )


@dataclass(frozen=True)
class PrefetcherParams:
    """Which hardware prefetchers are enabled (BIOS switches in §4.3)."""

    l1i_next_line: bool = True
    adjacent_line: bool = True
    hw_prefetcher: bool = True  # L2 stream prefetcher
    dcu_streamer: bool = True  # L1-D streaming prefetcher
    hw_prefetch_degree: int = 2

    def all_disabled(self) -> "PrefetcherParams":
        return PrefetcherParams(False, False, False, False)


@dataclass(frozen=True)
class MachineParams:
    """Full parameter set for the simulated server processor."""

    freq_hz: float = 2.93e9
    num_cores: int = 6
    active_cores: int = 4  # the paper limits workloads to four cores
    smt_threads: int = 1

    # Core micro-architecture (Table 1).
    width: int = 4
    rob_entries: int = 128
    load_buffer: int = 48
    store_buffer: int = 32
    reservation_stations: int = 36
    mshr_entries: int = 16  # L2 misses in flight per core (§4.3)
    fetch_queue: int = 16
    branch_mispredict_penalty: int = 15
    alu_latency: int = 1

    # Memory hierarchy (Table 1).
    l1i: CacheParams = field(default_factory=lambda: CacheParams(32 * 1024, 4, 4))
    l1d: CacheParams = field(default_factory=lambda: CacheParams(32 * 1024, 8, 4))
    l2: CacheParams = field(default_factory=lambda: CacheParams(256 * 1024, 8, 6))
    llc: CacheParams = field(default_factory=lambda: CacheParams(12 * 1024 * 1024, 16, 29))
    memory_latency: int = 200
    memory_channels: int = 3
    peak_bandwidth_bytes_per_s: float = 32e9

    # TLBs.
    page_bytes: int = 4096
    itlb_entries: int = 64
    dtlb_entries: int = 64
    stlb_entries: int = 512
    tlb_miss_penalty: int = 30

    prefetch: PrefetcherParams = field(default_factory=PrefetcherParams)

    line_bytes: int = 64

    def with_llc_mb(self, megabytes: float) -> "MachineParams":
        # repro-lint: pure -- derived configs feed config_fingerprint
        """Return a copy with the LLC resized (Figure 4 sweeps)."""
        size = int(megabytes * 1024 * 1024)
        assoc = self.llc.assoc
        # Keep the set count a power-of-two-free divisor by adjusting assoc
        # when the size does not divide evenly.
        while size % (self.line_bytes * assoc):
            assoc -= 1
            if assoc == 0:
                raise ValueError(f"cannot build an LLC of {megabytes} MB")
        return replace(self, llc=CacheParams(size, assoc, self.llc.latency))

    def with_prefetchers(self, prefetch: PrefetcherParams) -> "MachineParams":
        return replace(self, prefetch=prefetch)

    def with_smt(self, threads: int = 2) -> "MachineParams":
        return replace(self, smt_threads=threads)

    @staticmethod
    def xeon_x5670() -> "MachineParams":
        """The paper's baseline machine (Table 1)."""
        return MachineParams()

    @staticmethod
    def table1_rows() -> list[tuple[str, str]]:
        """Human-readable Table 1, derived from the default parameters."""
        p = MachineParams()
        return [
            ("Processor", "32nm Intel Xeon X5670, operating at 2.93GHz"),
            ("CMP width", f"{p.num_cores} OoO cores"),
            ("Core width", f"{p.width}-wide issue and retire"),
            ("Reorder buffer", f"{p.rob_entries} entries"),
            ("Load/Store buffer", f"{p.load_buffer}/{p.store_buffer} entries"),
            ("Reservation stations", f"{p.reservation_stations} entries"),
            ("L1 cache", f"{p.l1i.size_bytes // 1024}KB, split I/D, "
                         f"{p.l1i.latency}-cycle access latency"),
            ("L2 cache", f"{p.l2.size_bytes // 1024}KB per core, "
                         f"{p.l2.latency}-cycle access latency"),
            ("LLC (L3 cache)", f"{p.llc.size_bytes // (1024 * 1024)}MB, "
                               f"{p.llc.latency}-cycle access latency"),
            ("Memory", f"24GB, {p.memory_channels} DDR3 channels, delivering "
                       f"up to {int(p.peak_bandwidth_bytes_per_s / 1e9)}GB/s"),
        ]

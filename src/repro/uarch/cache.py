"""Set-associative cache with LRU replacement and per-class statistics.

The implementation favours simulation speed: each set is a plain dict
keyed by tag (Python dicts preserve insertion order, so popping and
re-inserting a key implements LRU move-to-front in O(1)).  Per-line
metadata (dirty, prefetched-and-not-yet-used) is the dict value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uarch.params import CacheParams


@dataclass
class CacheStats:
    """Demand/prefetch access counters, split instruction/data and App/OS."""

    demand_hits: int = 0
    demand_misses: int = 0
    inst_hits: int = 0
    inst_misses: int = 0
    os_inst_hits: int = 0
    os_inst_misses: int = 0
    data_hits: int = 0
    data_misses: int = 0
    os_data_hits: int = 0
    os_data_misses: int = 0
    prefetch_issued: int = 0
    prefetch_useful: int = 0
    prefetch_unused_evicted: int = 0
    writebacks: int = 0

    @property
    def demand_accesses(self) -> int:
        return self.demand_hits + self.demand_misses

    @property
    def hit_ratio(self) -> float:
        total = self.demand_accesses
        return self.demand_hits / total if total else 0.0

    def merge(self, other: "CacheStats") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class LineState:
    """Metadata stored with each resident line."""

    dirty: bool = False
    prefetched: bool = False  # brought in by a prefetcher, not yet demanded
    pf_penalty: int = 0  # residual latency if demanded before fully fetched


@dataclass
class EvictedLine:
    addr: int
    dirty: bool
    was_unused_prefetch: bool


class Cache:
    """One cache level.  Addresses are byte addresses; lines are aligned."""

    def __init__(self, name: str, params: CacheParams) -> None:
        self.name = name
        self.params = params
        self.line_bytes = params.line_bytes
        self._line_shift = params.line_bytes.bit_length() - 1
        self.num_sets = params.num_sets
        self.assoc = params.assoc
        self.latency = params.latency
        self._sets: list[dict[int, LineState]] = [dict() for _ in range(self.num_sets)]
        self.stats = CacheStats()
        # Residual latency charged by the last demand hit that consumed a
        # still-in-flight prefetch (read by the hierarchy after access()).
        self.consumed_pf_penalty = 0

    # -- address helpers -------------------------------------------------
    def line_addr(self, addr: int) -> int:
        return addr >> self._line_shift

    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    # -- queries ----------------------------------------------------------
    def contains(self, addr: int) -> bool:
        line = self.line_addr(addr)
        return line in self._sets[self._set_index(line)]

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    # -- operations --------------------------------------------------------
    def access(
        self,
        addr: int,
        is_write: bool = False,
        is_instr: bool = False,
        is_os: bool = False,
    ) -> bool:
        """Demand access.  Returns True on hit.  Does not fill on miss —
        the hierarchy decides fill policy via :meth:`fill`."""
        line = self.line_addr(addr)
        cset = self._sets[self._set_index(line)]
        state = cset.get(line)
        stats = self.stats
        self.consumed_pf_penalty = 0
        if state is not None:
            # LRU bump: re-insert at the most-recently-used position.
            del cset[line]
            cset[line] = state
            if state.prefetched:
                state.prefetched = False
                stats.prefetch_useful += 1
                # A late prefetch: the demand arrives while the fill is
                # still in flight and pays part of the source latency.
                self.consumed_pf_penalty = state.pf_penalty
                state.pf_penalty = 0
            if is_write:
                state.dirty = True
            stats.demand_hits += 1
            if is_instr:
                stats.inst_hits += 1
                if is_os:
                    stats.os_inst_hits += 1
            else:
                stats.data_hits += 1
                if is_os:
                    stats.os_data_hits += 1
            return True
        stats.demand_misses += 1
        if is_instr:
            stats.inst_misses += 1
            if is_os:
                stats.os_inst_misses += 1
        else:
            stats.data_misses += 1
            if is_os:
                stats.os_data_misses += 1
        return False

    def fill(
        self,
        addr: int,
        dirty: bool = False,
        prefetched: bool = False,
        pf_penalty: int = 0,
    ) -> EvictedLine | None:
        """Install a line, evicting the LRU line of its set if needed.

        Returns the evicted line (for writeback propagation) or None.
        """
        line = self.line_addr(addr)
        cset = self._sets[self._set_index(line)]
        existing = cset.get(line)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            if not prefetched:
                existing.prefetched = False
                existing.pf_penalty = 0
            return None
        victim = None
        if len(cset) >= self.assoc:
            old_line, old_state = next(iter(cset.items()))
            del cset[old_line]
            if old_state.dirty:
                self.stats.writebacks += 1
            if old_state.prefetched:
                self.stats.prefetch_unused_evicted += 1
            victim = EvictedLine(
                addr=old_line << self._line_shift,
                dirty=old_state.dirty,
                was_unused_prefetch=old_state.prefetched,
            )
        cset[line] = LineState(dirty=dirty, prefetched=prefetched,
                               pf_penalty=pf_penalty)
        if prefetched:
            self.stats.prefetch_issued += 1
        return victim

    def peek_state(self, addr: int) -> LineState | None:
        """Inspect a line's metadata without touching LRU or stats."""
        line = self.line_addr(addr)
        return self._sets[self._set_index(line)].get(line)

    def invalidate(self, addr: int) -> bool:
        """Drop a line if resident (used by the coherence model)."""
        line = self.line_addr(addr)
        cset = self._sets[self._set_index(line)]
        return cset.pop(line, None) is not None

    def flush(self) -> None:
        for cset in self._sets:
            cset.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kb = self.params.size_bytes / 1024
        return f"<Cache {self.name} {kb:.0f}KB {self.assoc}-way lat={self.latency}>"

"""Set-associative cache with LRU replacement and per-class statistics.

The implementation favours simulation speed: each set is a plain dict
keyed by tag (Python dicts preserve insertion order, so popping and
re-inserting a key implements LRU move-to-front in O(1)).  Per-line
metadata (dirty, prefetched-and-not-yet-used) is the dict value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uarch.params import CacheParams


@dataclass
class CacheStats:
    """Demand/prefetch access counters, split instruction/data and App/OS."""

    demand_hits: int = 0
    demand_misses: int = 0
    inst_hits: int = 0
    inst_misses: int = 0
    os_inst_hits: int = 0
    os_inst_misses: int = 0
    data_hits: int = 0
    data_misses: int = 0
    os_data_hits: int = 0
    os_data_misses: int = 0
    prefetch_issued: int = 0
    prefetch_useful: int = 0
    prefetch_unused_evicted: int = 0
    writebacks: int = 0

    @property
    def demand_accesses(self) -> int:
        return self.demand_hits + self.demand_misses

    @property
    def hit_ratio(self) -> float:
        total = self.demand_accesses
        return self.demand_hits / total if total else 0.0

    def merge(self, other: "CacheStats") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass(slots=True)
class LineState:
    """Metadata stored with each resident line.

    ``slots=True`` matters here: a simulation holds and churns hundreds
    of thousands of these, and dropping the per-instance ``__dict__``
    roughly halves both the allocation cost and the number of
    containers the cyclic GC has to traverse.
    """

    dirty: bool = False
    prefetched: bool = False  # brought in by a prefetcher, not yet demanded
    pf_penalty: int = 0  # residual latency if demanded before fully fetched


@dataclass
class EvictedLine:
    addr: int
    dirty: bool
    was_unused_prefetch: bool


class Cache:
    """One cache level.  Addresses are byte addresses; lines are aligned."""

    def __init__(self, name: str, params: CacheParams) -> None:
        self.name = name
        self.params = params
        self.line_bytes = params.line_bytes
        self._line_shift = params.line_bytes.bit_length() - 1
        self.num_sets = params.num_sets
        self.assoc = params.assoc
        self.latency = params.latency
        self._sets: list[dict[int, LineState]] = [dict() for _ in range(self.num_sets)]
        self.stats = CacheStats()
        # Residual latency charged by the last demand hit that consumed a
        # still-in-flight prefetch (read by the hierarchy after access()).
        self.consumed_pf_penalty = 0

    # -- address helpers -------------------------------------------------
    def line_addr(self, addr: int) -> int:
        return addr >> self._line_shift

    def _set_index(self, line: int) -> int:
        return line % self.num_sets

    # -- queries ----------------------------------------------------------
    def contains(self, addr: int) -> bool:
        line = addr >> self._line_shift
        return line in self._sets[line % self.num_sets]

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    # -- operations --------------------------------------------------------
    def access(
        self,
        addr: int,
        is_write: bool = False,
        is_instr: bool = False,
        is_os: bool = False,
    ) -> bool:
        """Demand access.  Returns True on hit.  Does not fill on miss —
        the hierarchy decides fill policy via :meth:`fill`."""
        line = addr >> self._line_shift
        cset = self._sets[line % self.num_sets]
        state = cset.get(line)
        stats = self.stats
        self.consumed_pf_penalty = 0
        if state is not None:
            # LRU bump: re-insert at the most-recently-used position.
            del cset[line]
            cset[line] = state
            if state.prefetched:
                state.prefetched = False
                stats.prefetch_useful += 1
                # A late prefetch: the demand arrives while the fill is
                # still in flight and pays part of the source latency.
                self.consumed_pf_penalty = state.pf_penalty
                state.pf_penalty = 0
            if is_write:
                state.dirty = True
            stats.demand_hits += 1
            if is_instr:
                stats.inst_hits += 1
                if is_os:
                    stats.os_inst_hits += 1
            else:
                stats.data_hits += 1
                if is_os:
                    stats.os_data_hits += 1
            return True
        stats.demand_misses += 1
        if is_instr:
            stats.inst_misses += 1
            if is_os:
                stats.os_inst_misses += 1
        else:
            stats.data_misses += 1
            if is_os:
                stats.os_data_misses += 1
        return False

    def fill(
        self,
        addr: int,
        dirty: bool = False,
        prefetched: bool = False,
        pf_penalty: int = 0,
    ) -> EvictedLine | None:
        """Install a line, evicting the LRU line of its set if needed.

        Returns the evicted line (for writeback propagation) or None.
        """
        line = addr >> self._line_shift
        cset = self._sets[line % self.num_sets]
        existing = cset.get(line)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            if not prefetched:
                existing.prefetched = False
                existing.pf_penalty = 0
            return None
        victim = None
        if len(cset) >= self.assoc:
            old_line, old_state = next(iter(cset.items()))
            del cset[old_line]
            if old_state.dirty:
                self.stats.writebacks += 1
            if old_state.prefetched:
                self.stats.prefetch_unused_evicted += 1
            victim = EvictedLine(
                addr=old_line << self._line_shift,
                dirty=old_state.dirty,
                was_unused_prefetch=old_state.prefetched,
            )
        cset[line] = LineState(dirty=dirty, prefetched=prefetched,
                               pf_penalty=pf_penalty)
        if prefetched:
            self.stats.prefetch_issued += 1
        return victim

    def fill_fast(
        self,
        addr: int,
        dirty: bool = False,
        prefetched: bool = False,
        pf_penalty: int = 0,
    ) -> int:
        """:meth:`fill` without the victim record: the hot-path variant.

        Returns the evicted line's byte address if that line was dirty
        (the only victims the hierarchy propagates — they ripple as
        writebacks), else ``-1``.  Statistics, LRU order, and the
        existing-line merge are identical to :meth:`fill`; on eviction
        the victim's :class:`LineState` is recycled for the incoming
        line instead of allocating a fresh one (no caller retains line
        state across a fill).
        """
        line = addr >> self._line_shift
        cset = self._sets[line % self.num_sets]
        existing = cset.get(line)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            if not prefetched:
                existing.prefetched = False
                existing.pf_penalty = 0
            return -1
        victim_addr = -1
        if len(cset) >= self.assoc:
            old_line, old_state = next(iter(cset.items()))
            del cset[old_line]
            if old_state.dirty:
                self.stats.writebacks += 1
                victim_addr = old_line << self._line_shift
            if old_state.prefetched:
                self.stats.prefetch_unused_evicted += 1
            old_state.dirty = dirty
            old_state.prefetched = prefetched
            old_state.pf_penalty = pf_penalty
            cset[line] = old_state
        else:
            cset[line] = LineState(dirty, prefetched, pf_penalty)
        if prefetched:
            self.stats.prefetch_issued += 1
        return victim_addr

    def install_span(self, base: int, nbytes: int) -> None:
        """Install every line of ``[base, base + nbytes)``, batched.

        Equivalent to calling :meth:`fill` (with default arguments, the
        victim discarded) once per line of the span, but with the
        per-line method dispatch and victim-record allocation hoisted —
        functional warming installs tens of thousands of lines per
        replay through this path.  Statistic updates and LRU behaviour
        are identical to the per-line walk.
        """
        shift = self._line_shift
        num_sets = self.num_sets
        assoc = self.assoc
        sets = self._sets
        stats = self.stats
        # The addresses stepped from ``base`` by one line map onto
        # consecutive line numbers regardless of alignment, so the walk
        # can iterate lines directly.
        l0 = base >> shift
        nlines = (nbytes + self.line_bytes - 1) // self.line_bytes
        end = l0 + nlines
        if nlines >= num_sets * assoc and not any(
            l0 <= line < end for cset in sets for line in cset
        ):
            # The span floods every set with at least ``assoc`` fresh
            # lines, and none of its lines are already resident: every
            # pre-existing line is evicted no matter what (charge its
            # eviction stats), the span's own non-surviving lines come
            # and go clean (no stats), and the final state is exactly
            # the span's last ``num_sets * assoc`` lines in install
            # order.  Skipping the doomed installs makes warming a
            # larger-than-LLC footprint O(capacity), not O(footprint).
            start = end - num_sets * assoc
            for s in range(num_sets):
                old = sets[s]
                new = {}
                olds = iter(old.values())
                first = start + ((s - start) % num_sets)
                for line in range(first, end, num_sets):
                    state = next(olds, None)
                    if state is None:
                        new[line] = LineState()
                    else:
                        # Charge the recycled line's eviction and reset
                        # it to a fresh clean install.
                        if state.dirty:
                            stats.writebacks += 1
                        if state.prefetched:
                            stats.prefetch_unused_evicted += 1
                        state.dirty = False
                        state.prefetched = False
                        state.pf_penalty = 0
                        new[line] = state
                sets[s] = new
            return
        # Walk the span one set at a time (the span's lines land in sets
        # round-robin, so set s receives every ``num_sets``-th line).
        # Within a set the install order matches the sequential walk;
        # across sets the order is immaterial (LRU state is per set and
        # the statistics are plain counters).
        for s in range(min(nlines, num_sets)):
            first = l0 + s
            set_index = first % num_sets
            cset = sets[set_index]
            if not cset:
                # Empty set: the sequential walk installs this set's
                # span lines in ascending order, evicting only the
                # span's own earlier lines once past ``assoc`` — all
                # clean, never prefetched, so no statistics fire and
                # the final content is exactly the last ``assoc`` lines
                # in install order.
                span = range(first, end, num_sets)
                k = len(span)
                if k > assoc:
                    span = span[k - assoc:]
                sets[set_index] = {line: LineState() for line in span}
                continue
            cset_get = cset.get
            occupancy = len(cset)
            for line in range(first, end, num_sets):
                existing = cset_get(line)
                if existing is not None:
                    # Same as fill(dirty=False, prefetched=False): a
                    # demand install clears any not-yet-used prefetch
                    # marking.
                    existing.prefetched = False
                    existing.pf_penalty = 0
                    continue
                if occupancy >= assoc:
                    # del + insert keeps the set at ``assoc`` lines.
                    old_line, old_state = next(iter(cset.items()))
                    del cset[old_line]
                    if old_state.dirty:
                        stats.writebacks += 1
                    if old_state.prefetched:
                        stats.prefetch_unused_evicted += 1
                else:
                    occupancy += 1
                cset[line] = LineState()

    def peek_state(self, addr: int) -> LineState | None:
        """Inspect a line's metadata without touching LRU or stats."""
        line = self.line_addr(addr)
        return self._sets[self._set_index(line)].get(line)

    def invalidate(self, addr: int) -> bool:
        """Drop a line if resident (used by the coherence model)."""
        line = self.line_addr(addr)
        cset = self._sets[self._set_index(line)]
        return cset.pop(line, None) is not None

    def flush(self) -> None:
        for cset in self._sets:
            cset.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kb = self.params.size_bytes / 1024
        return f"<Cache {self.name} {kb:.0f}KB {self.assoc}-way lat={self.latency}>"

"""Two-level TLB model.

The paper's memory-cycle computation (§3.1) includes second-level TLB
miss cycles and first-level instruction-TLB miss cycles, so the model
tracks both levels with fully-associative LRU arrays.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TlbStats:
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.l1_hits + self.l1_misses


class _LruArray:
    def __init__(self, entries: int) -> None:
        self.entries = entries
        self._map: dict[int, None] = {}

    def access(self, page: int) -> bool:
        if page in self._map:
            del self._map[page]
            self._map[page] = None
            return True
        return False

    def fill(self, page: int) -> None:
        if page in self._map:
            del self._map[page]
        elif len(self._map) >= self.entries:
            self._map.pop(next(iter(self._map)))
        self._map[page] = None


class Tlb:
    """An L1 TLB (instruction or data) backed by a shared L2 (STLB)."""

    def __init__(self, l1_entries: int, stlb: "_LruArray", page_bytes: int = 4096) -> None:
        self._l1 = _LruArray(l1_entries)
        self._stlb = stlb
        self.page_bytes = page_bytes
        self.stats = TlbStats()

    def access(self, addr: int) -> str:
        """Translate; returns 'l1', 'l2', or 'miss' (page walk needed)."""
        page = addr // self.page_bytes
        if self._l1.access(page):
            self.stats.l1_hits += 1
            return "l1"
        self.stats.l1_misses += 1
        if self._stlb.access(page):
            self.stats.l2_hits += 1
            self._l1.fill(page)
            return "l2"
        self.stats.l2_misses += 1
        self._stlb.fill(page)
        self._l1.fill(page)
        return "miss"


def make_tlbs(
    itlb_entries: int, dtlb_entries: int, stlb_entries: int, page_bytes: int = 4096
) -> tuple[Tlb, Tlb]:
    """Build an (ITLB, DTLB) pair sharing one second-level TLB."""
    stlb = _LruArray(stlb_entries)
    return (
        Tlb(itlb_entries, stlb, page_bytes),
        Tlb(dtlb_entries, stlb, page_bytes),
    )

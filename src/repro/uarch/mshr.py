"""MSHR / super-queue occupancy accounting.

The paper computes *Memory cycles* from "MSHR occupancy statistics ...
the number of cycles when there is at least one L2 miss being serviced"
(§3.1, footnote 1: the super queue).  The core registers every off-core
(L2-missing) request here with its completion cycle; the tracker answers
(a) how many cycles had ≥ 1 request outstanding and (b) the average
number outstanding over those cycles — the MLP metric of Figure 3.
"""

from __future__ import annotations


class SuperQueue:
    """Tracks outstanding off-core requests over simulated cycles.

    ``advance(cycle)`` must be called with monotonically non-decreasing
    cycle numbers; it integrates occupancy over the elapsed interval.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._completions: list[int] = []  # completion cycles, unsorted
        self._last_cycle = 0
        self.busy_cycles = 0  # cycles with >=1 outstanding request
        self.occupancy_sum = 0  # sum over busy cycles of #outstanding
        self.requests = 0

    @property
    def outstanding(self) -> int:
        return len(self._completions)

    def has_capacity(self) -> bool:
        return len(self._completions) < self.capacity

    def insert(self, completion_cycle: int) -> None:
        self._completions.append(completion_cycle)
        self.requests += 1

    def earliest_completion(self) -> int:
        return min(self._completions)

    def advance(self, cycle: int) -> None:
        """Integrate occupancy from the last observed cycle up to `cycle`."""
        if cycle <= self._last_cycle:
            return
        start = self._last_cycle
        self._last_cycle = cycle
        if not self._completions:
            return
        # Integrate piecewise: occupancy only changes at completion times.
        pending = sorted(self._completions)
        self._completions = [c for c in pending if c > cycle]
        t = start
        n = len(pending)
        i = 0
        while t < cycle and i < n:
            next_completion = pending[i]
            seg_end = min(next_completion, cycle)
            if seg_end > t:
                width = seg_end - t
                live = n - i
                self.busy_cycles += width
                self.occupancy_sum += width * live
                t = seg_end
            if next_completion <= cycle:
                i += 1

    @property
    def mlp(self) -> float:
        """Average outstanding off-core requests over non-idle cycles."""
        return self.occupancy_sum / self.busy_cycles if self.busy_cycles else 0.0

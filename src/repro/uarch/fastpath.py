"""Specialized columnar replay loop: the timing hot path, batched.

:meth:`repro.uarch.core.Core.run` is the *general* loop: any number of
hardware threads, optional cycle budgets, live or decoded sources.  A
single-thread trace replay — the shape of every Figure 1/2/4/5/7 cell —
needs none of that generality, yet pays for all of it per micro-op:
one ``MicroOp`` allocation, a ROB-entry object, a generator resume,
round-robin thread bookkeeping, and several method dispatches per op in
the interpreted loop.

:func:`replay_columns` executes the *identical cycle-level algorithm*
specialized for that case:

* micro-op fields are read positionally out of a
  :class:`~repro.trace.columns.ColumnBatch` (plain Python lists) —
  no per-uop object is ever built;
* a ROB entry is just the uop's column index: per-uop pipeline state
  lives in preallocated ``bytearray``/list columns (``completed``,
  ``issued``, ``ndeps``), so the loop allocates nothing per op — which
  also keeps the cyclic GC quiet during replay;
* the branch predictor is inlined (same tables, same update order,
  state written back on exit), removing a method call per branch;
* memory accesses go through
  :meth:`~repro.uarch.hierarchy.MemoryHierarchy.access_timed`, the
  tuple-returning walk with the translate/L1-hit case inlined;
* result counters accumulate in locals and land in the
  :class:`~repro.uarch.core.CoreResult` once, at the end.

**Equivalence contract.**  The replay-equivalence suite pins every
``CoreResult`` counter byte-identical between this loop and the general
loop for every registry workload.  Any semantic change to the core
model must land in ``Core.run`` first and be mirrored here — never the
other way around.  The loop intentionally reads private predictor and
snapshot internals; it is the sanctioned twin of ``Core.run``, not a
public API.

Selection lives in :func:`repro.trace.replay.replay_trace` (one
captured thread, no SMT, no fault plan) and participates in
:func:`repro.core.sweep.config_fingerprint` via
:data:`REPLAY_ENGINE_SCHEMA`, so cached results can never silently mix
engine generations.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING

from repro.uarch.core import Core, CoreResult, _HierarchySnapshot

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.trace.columns import ColumnBatch

__all__ = ["REPLAY_ENGINE_SCHEMA", "replay_columns"]

#: Bump when the fast loop's *algorithm* changes relative to the
#: general loop (both must change together; the equivalence tests pin
#: them to each other).  Folded into every result fingerprint so a
#: result computed by an older engine can never be served for a newer
#: one.
REPLAY_ENGINE_SCHEMA = 1


def replay_columns(core: Core, batch: "ColumnBatch") -> CoreResult:
    """Run one captured thread's columns to completion on ``core``.

    Mirrors ``Core.run(traces)`` for exactly one trace and no cycle
    budget; see the module docstring for the equivalence contract.
    """
    params = core.params
    hier = core.hierarchy
    predictor = core.branch_predictor
    width = params.width
    rob_capacity = params.rob_entries
    rs_capacity = params.reservation_stations
    load_buffer = params.load_buffer
    line_shift = params.line_bytes.bit_length() - 1
    alu_lat = params.alu_latency
    mispredict_penalty = params.branch_mispredict_penalty

    access = hier.access_timed
    l1i_next = hier._l1i_next
    l1i_next_shift = hier._l1i_next_shift
    l1i_prefetch_miss = hier._l1i_prefetch_miss

    # The translate + L1-hit slice of access_timed, inlined per side:
    # the overwhelmingly common memory outcome.  Anything else (TLB
    # miss, prefetched line, L1 miss) falls back to the full walk.
    # Mirrors access_timed statistic-for-statistic; the equivalence
    # suite pins the two.  A non-power-of-two page size (page_shift 0)
    # disables the inline probe entirely.
    page_shift = hier._page_shift
    _dtlb, dl1map, dtstats, l1d, l1dstats = hier._data_side
    _itlb, il1map, itstats, l1i, l1istats = hier._instr_side
    l1d_sets = l1d._sets
    l1d_shift = l1d._line_shift
    l1d_nsets = l1d.num_sets
    l1d_latency = l1d.latency
    l1i_sets = l1i._sets
    l1i_shift = l1i._line_shift
    l1i_nsets = l1i.num_sets
    record_write = hier.directory.record_write
    core_id = hier.core_id
    heappush = heapq.heappush
    heappop = heapq.heappop

    kinds = batch.kinds
    pcs = batch.pcs
    addrs = batch.addrs
    flags = batch.flags
    targets = batch.targets
    dep_counts = batch.dep_counts
    dep_idx = batch.dep_indexes()
    os_flags = batch.os_flags()
    line_starts = batch.line_starts(line_shift)
    n = batch.length

    # Branch predictor, inlined: same tables and update order as
    # BranchPredictor.predict_and_update; state written back on exit.
    bcounters = predictor._counters
    hmask = predictor._history_mask
    history = predictor._history
    btb = predictor._btb
    btb_entries = predictor._btb_entries
    branches = 0
    mispredicts = 0
    btb_misses = 0

    # Super-queue occupancy (same inline tracking as the general loop).
    superq_capacity = params.mshr_entries
    superq: list[int] = []
    superq_busy = 0
    superq_area = 0
    superq_last = 0
    superq_requests = 0

    # Per-uop pipeline state, held in flat columns indexed by the uop's
    # position in the batch.  A "ROB entry" is just that index.
    completed = bytearray(n)
    issued_b = bytearray(n)
    ndeps = [0] * n
    waiters: dict[int, list[int]] = {}
    waiters_pop = waiters.pop
    # has_waiters[idx] keeps the wakeup stage out of the waiters dict
    # for the common producer-with-no-consumers-in-flight case.
    has_waiters = bytearray(n)

    # The ROB needs no container at all: dispatch admits column
    # indexes in order, so its contents are exactly ``range(rob_head,
    # i)`` — occupancy is ``i - rob_head`` and the commit head is
    # ``rob_head`` itself.
    rob_head = 0
    ready: deque[int] = deque()
    ready_popleft = ready.popleft
    ready_append = ready.append
    waiting = 0  # dispatched but not issued (reservation stations)
    outstanding_loads = 0

    completing: dict[int, list[int]] = {}
    completing_get = completing.get
    completing_pop = completing.pop
    event_heap: list[int] = []
    # Ops completing exactly one cycle out (single-cycle ALU and store
    # results — the overwhelmingly common case) bypass the event heap.
    # An op can only enter this list on the cycle before it fires (issue
    # activity inhibits the idle skip), and every heap bucket due the
    # same cycle was pushed at least a cycle earlier, so draining the
    # heap first preserves the chronological wakeup order of the
    # merged-bucket scheme.
    nextc: list[int] = []
    nextc_append = nextc.append

    baseline_hier = _HierarchySnapshot(hier)
    cycle = core._cycle

    # Single-thread frontend state.
    i = 0            # next column index to decode
    dep_off = 0      # cursor into the flattened dependency column
    pending = False  # index i decoded but stalled on its I-fetch
    stall_until = 0
    exhausted = False
    last_is_os = 0

    # Result counters, accumulated in locals.
    instructions = 0
    os_instructions = 0
    committing_cycles = 0
    committing_cycles_os = 0
    stalled_cycles = 0
    stalled_cycles_os = 0
    loads = 0
    stores = 0

    def superq_advance(now: int) -> None:
        nonlocal superq_busy, superq_area, superq_last
        if now <= superq_last:
            return
        t = superq_last
        superq_last = now
        while superq and t < now:
            head = superq[0]
            if head > now:
                width_c = now - t
                superq_busy += width_c
                superq_area += width_c * len(superq)
                t = now
                break
            if head > t:
                width_c = head - t
                superq_busy += width_c
                superq_area += width_c * len(superq)
                t = head
            heappop(superq)
        if superq and t < now:
            width_c = now - t
            superq_busy += width_c
            superq_area += width_c * len(superq)

    while True:
        # ---- wakeup completions scheduled for this cycle ----------
        if event_heap and event_heap[0] <= cycle:
            while event_heap and event_heap[0] <= cycle:
                when = heappop(event_heap)
                for idx in completing_pop(when, ()):  # noqa: B909
                    completed[idx] = 1
                    if kinds[idx] == 1:
                        outstanding_loads -= 1
                    if has_waiters[idx]:
                        for widx in waiters_pop(idx):
                            nd = ndeps[widx] - 1
                            ndeps[widx] = nd
                            if not nd and not issued_b[widx]:
                                ready_append(widx)
        if nextc:
            for idx in nextc:
                completed[idx] = 1
                if kinds[idx] == 1:
                    outstanding_loads -= 1
                if has_waiters[idx]:
                    for widx in waiters_pop(idx):
                        nd = ndeps[widx] - 1
                        ndeps[widx] = nd
                        if not nd and not issued_b[widx]:
                            ready_append(widx)
            nextc.clear()

        # ---- commit (in order, up to width) ------------------------
        committed_this_cycle = 0
        first_commit_os = 0
        while rob_head < i and committed_this_cycle < width:
            head = rob_head
            if not completed[head]:
                break
            rob_head = head + 1
            head_os = os_flags[head]
            if committed_this_cycle == 0:
                first_commit_os = head_os
            committed_this_cycle += 1
            instructions += 1
            if head_os:
                os_instructions += 1

        if committed_this_cycle:
            committing_cycles += 1
            if first_commit_os:
                committing_cycles_os += 1
        else:
            stalled_cycles += 1
            if rob_head < i:
                if os_flags[rob_head]:
                    stalled_cycles_os += 1
            elif last_is_os:
                stalled_cycles_os += 1

        # ---- issue (up to width ready micro-ops) -------------------
        issued = 0
        while ready and issued < width:
            idx = ready_popleft()
            kind = kinds[idx]
            if kind == 1:  # LOAD
                if outstanding_loads >= load_buffer:
                    ready.appendleft(idx)
                    break
                if len(superq) >= superq_capacity:
                    superq_advance(cycle)
                if len(superq) >= superq_capacity:
                    # Cannot start another off-core miss; conservatively
                    # wait (we do not know hit/miss before access).
                    ready.appendleft(idx)
                    break
                a = addrs[idx]
                st = None
                if page_shift and (a >> page_shift) in dl1map:
                    lline = a >> l1d_shift
                    lset = l1d_sets[lline % l1d_nsets]
                    st = lset.get(lline)
                if st is not None and not st.prefetched:
                    page = a >> page_shift
                    del dl1map[page]
                    dl1map[page] = None
                    dtstats.l1_hits += 1
                    del lset[lline]
                    lset[lline] = st
                    l1d.consumed_pf_penalty = 0
                    l1dstats.demand_hits += 1
                    l1dstats.data_hits += 1
                    if os_flags[idx]:
                        l1dstats.os_data_hits += 1
                    done = cycle + l1d_latency
                    outstanding_loads += 1
                else:
                    latency, _level, off_core, _chip = access(
                        a, False, False, os_flags[idx], cycle)
                    done = cycle + latency
                    outstanding_loads += 1
                    if off_core:
                        superq_advance(cycle)
                        heappush(superq, done)
                        superq_requests += 1
            elif kind == 2:  # STORE
                # Stores drain through the store buffer (see Core.run).
                a = addrs[idx]
                st = None
                if page_shift and (a >> page_shift) in dl1map:
                    lline = a >> l1d_shift
                    lset = l1d_sets[lline % l1d_nsets]
                    st = lset.get(lline)
                if st is not None and not st.prefetched:
                    page = a >> page_shift
                    del dl1map[page]
                    dl1map[page] = None
                    dtstats.l1_hits += 1
                    record_write(a, core_id)
                    del lset[lline]
                    lset[lline] = st
                    l1d.consumed_pf_penalty = 0
                    st.dirty = True
                    l1dstats.demand_hits += 1
                    l1dstats.data_hits += 1
                    if os_flags[idx]:
                        l1dstats.os_data_hits += 1
                else:
                    access(a, True, False, os_flags[idx], cycle)
                done = cycle + 1
            else:  # ALU or BRANCH
                done = cycle + alu_lat
            issued_b[idx] = 1
            waiting -= 1
            issued += 1
            if done == cycle + 1:
                nextc_append(idx)
            else:
                bucket = completing_get(done)
                if bucket is None:
                    completing[done] = [idx]
                    heappush(event_heap, done)
                else:
                    bucket.append(idx)

        # ---- fetch + dispatch --------------------------------------
        dispatched = 0
        if not exhausted and stall_until <= cycle:
            while (
                dispatched < width
                and i - rob_head < rob_capacity
                and waiting < rs_capacity
                and stall_until <= cycle
            ):
                if pending:
                    pending = False
                else:
                    if i >= n:
                        exhausted = True
                        break
                    if line_starts[i]:
                        pc = pcs[i]
                        st = None
                        if page_shift and (pc >> page_shift) in il1map:
                            fline = pc >> l1i_shift
                            fset = l1i_sets[fline % l1i_nsets]
                            st = fset.get(fline)
                        if st is not None and not st.prefetched:
                            page = pc >> page_shift
                            del il1map[page]
                            il1map[page] = None
                            itstats.l1_hits += 1
                            del fset[fline]
                            fset[fline] = st
                            l1i.consumed_pf_penalty = 0
                            l1istats.demand_hits += 1
                            l1istats.inst_hits += 1
                            if os_flags[i]:
                                l1istats.os_inst_hits += 1
                            if l1i_next is not None:
                                # prefetch_instruction, inlined up to
                                # the L1-I probe.
                                pline = (pc >> l1i_next_shift
                                         if l1i_next_shift >= 0
                                         else pc // l1i_next.line_bytes)
                                if pline != l1i_next._last_line:
                                    l1i_next._last_line = pline
                                    t = (pline + 1) * l1i_next.line_bytes
                                    tl = t >> l1i_shift
                                    tset = l1i_sets[tl % l1i_nsets]
                                    if tl not in tset:
                                        l1i_prefetch_miss(t, tl, tset)
                        else:
                            latency, level, off_core, _chip = access(
                                pc, False, True, os_flags[i], cycle)
                            if l1i_next is not None:
                                # prefetch_instruction, inlined up to
                                # the L1-I probe.
                                pline = (pc >> l1i_next_shift
                                         if l1i_next_shift >= 0
                                         else pc // l1i_next.line_bytes)
                                if pline != l1i_next._last_line:
                                    l1i_next._last_line = pline
                                    t = (pline + 1) * l1i_next.line_bytes
                                    tl = t >> l1i_shift
                                    tset = l1i_sets[tl % l1i_nsets]
                                    if tl not in tset:
                                        l1i_prefetch_miss(t, tl, tset)
                            if level != "l1":
                                stall_until = cycle + latency
                                if off_core:
                                    superq_advance(cycle)
                                    heappush(superq, stall_until)
                                    superq_requests += 1
                                pending = True
                                break
                    if kinds[i] == 3:  # BRANCH
                        branches += 1
                        site = pcs[i] >> 4
                        index = site & hmask
                        counter = bcounters[index]
                        if flags[i] & 2:  # taken
                            mispredicted = counter < 2
                            btb_missed = False
                            slot = site % btb_entries
                            if not mispredicted and btb.get(slot) != targets[i]:
                                btb_misses += 1
                                btb_missed = True
                            btb[slot] = targets[i]
                            if counter < 3:
                                bcounters[index] = counter + 1
                            history = ((history << 1) | 1) & hmask
                        else:
                            mispredicted = counter >= 2
                            btb_missed = False
                            if counter > 0:
                                bcounters[index] = counter - 1
                            history = (history << 1) & hmask
                        if mispredicted:
                            mispredicts += 1
                            # The branch itself still dispatches below.
                            stall_until = cycle + mispredict_penalty
                        elif btb_missed:
                            # Correct direction, unknown target: the
                            # frontend re-steers once the target is
                            # computed at decode/execute.
                            stall_until = cycle + 8
                # Dispatch into ROB.
                kind = kinds[i]
                last_is_os = os_flags[i]
                if kind == 1:
                    loads += 1
                elif kind == 2:
                    stores += 1
                dc = dep_counts[i]
                nd = 0
                if dc:
                    end = dep_off + dc
                    while dep_off < end:
                        j = dep_idx[dep_off]
                        dep_off += 1
                        # A producer outside the window (-1) or already
                        # completed carries no dependency — exactly the
                        # cases the general loop's in-flight dict (popped
                        # at commit, which requires completion) misses.
                        if j >= 0 and not completed[j]:
                            nd += 1
                            if has_waiters[j]:
                                waiters[j].append(i)
                            else:
                                has_waiters[j] = 1
                                waiters[j] = [i]
                    if nd:
                        ndeps[i] = nd
                waiting += 1
                dispatched += 1
                if not nd:
                    ready_append(i)
                i += 1

        # ---- termination / idle-cycle skipping ---------------------
        if rob_head >= i and exhausted:
            cycle += 1
            break

        if committed_this_cycle == 0 and issued == 0 and dispatched == 0:
            candidates = []
            if event_heap:
                candidates.append(event_heap[0])
            if not exhausted and stall_until > cycle:
                candidates.append(stall_until)
            if candidates:
                target = min(candidates)
                if target > cycle + 1:
                    skipped = target - cycle - 1
                    stalled_cycles += skipped
                    if rob_head < i:
                        if os_flags[rob_head]:
                            stalled_cycles_os += skipped
                    elif last_is_os:
                        stalled_cycles_os += skipped
                    cycle = target - 1
            else:
                raise RuntimeError(
                    "core deadlock: nothing in flight but trace not done"
                )
        cycle += 1

    superq_advance(cycle)
    core._cycle = cycle

    predictor._history = history
    pstats = predictor.stats
    pstats.branches += branches
    pstats.mispredicts += mispredicts
    pstats.btb_misses += btb_misses

    result = CoreResult(per_thread_instructions=[instructions])
    result.instructions = instructions
    result.os_instructions = os_instructions
    result.committing_cycles = committing_cycles
    result.committing_cycles_os = committing_cycles_os
    result.stalled_cycles = stalled_cycles
    result.stalled_cycles_os = stalled_cycles_os
    result.loads = loads
    result.stores = stores
    result.cycles = committing_cycles + stalled_cycles
    result.superq_busy_cycles = superq_busy
    result.superq_requests = superq_requests
    result.mlp = superq_area / superq_busy if superq_busy else 0.0
    result.memory_cycles = min(
        result.cycles,
        superq_busy
        + (hier.l2_instr_hit_stalls - baseline_hier.l2_instr_hit_stalls)
        + (hier.itlb_miss_stalls - baseline_hier.itlb_miss_stalls)
        + (hier.stlb_miss_stalls - baseline_hier.stlb_miss_stalls),
    )
    baseline_hier.apply_delta(result, hier)
    result.branches = branches
    result.branch_mispredicts = mispredicts
    return result

"""Off-chip memory-channel accounting (Figure 7).

Every LLC miss and dirty writeback moves one cache line across the memory
channels.  The model accumulates bytes (split App/OS) and converts them
into the paper's metric: per-core off-chip bandwidth utilization as a
fraction of the available per-core bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DramStats:
    read_bytes: int = 0
    write_bytes: int = 0
    os_read_bytes: int = 0
    os_write_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def os_bytes(self) -> int:
        return self.os_read_bytes + self.os_write_bytes

    @property
    def app_bytes(self) -> int:
        return self.total_bytes - self.os_bytes


class MemoryChannels:
    """Off-chip channel byte accounting shared by a chip's cores."""
    def __init__(
        self,
        channels: int,
        peak_bandwidth_bytes_per_s: float,
        line_bytes: int = 64,
    ) -> None:
        self.channels = channels
        self.peak_bandwidth = peak_bandwidth_bytes_per_s
        self.line_bytes = line_bytes
        self.stats = DramStats()

    def read_line(self, is_os: bool) -> None:
        self.stats.read_bytes += self.line_bytes
        if is_os:
            self.stats.os_read_bytes += self.line_bytes

    def write_line(self, is_os: bool) -> None:
        self.stats.write_bytes += self.line_bytes
        if is_os:
            self.stats.os_write_bytes += self.line_bytes

    def utilization(self, cycles: int, freq_hz: float, active_cores: int) -> float:
        """Fraction of the per-core share of peak bandwidth consumed."""
        if cycles == 0:
            return 0.0
        seconds = cycles / freq_hz
        per_core_peak = self.peak_bandwidth / max(active_cores, 1)
        achieved = self.stats.total_bytes / seconds
        return achieved / per_core_peak

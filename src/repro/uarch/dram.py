"""Off-chip memory-channel accounting (Figure 7).

Every LLC miss and dirty writeback moves one cache line across the memory
channels.  The model accumulates bytes (split App/OS) and converts them
into the paper's metric: per-core off-chip bandwidth utilization as a
fraction of the available per-core bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass


def per_core_utilization(nbytes: float, cycles: int, freq_hz: float,
                         peak_bandwidth_bytes_per_s: float,
                         active_cores: int = 4) -> float:
    """Fraction of the per-core share of peak bandwidth that ``nbytes``
    moved over ``cycles`` consumes — the one Figure 7 metric.

    Single source of truth shared by :class:`MemoryChannels`,
    :func:`repro.core.analysis.bandwidth_utilization`, and
    ``WorkloadRun.bandwidth_utilization``, so the figure table and the
    ``run`` CLI line can never disagree.
    """
    if not cycles:
        return 0.0
    seconds = cycles / freq_hz
    per_core_peak = peak_bandwidth_bytes_per_s / max(active_cores, 1)
    return (nbytes / seconds) / per_core_peak


@dataclass
class DramStats:
    read_bytes: int = 0
    write_bytes: int = 0
    os_read_bytes: int = 0
    os_write_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def os_bytes(self) -> int:
        return self.os_read_bytes + self.os_write_bytes

    @property
    def app_bytes(self) -> int:
        return self.total_bytes - self.os_bytes


class MemoryChannels:
    """Off-chip channel byte accounting shared by a chip's cores."""
    def __init__(
        self,
        channels: int,
        peak_bandwidth_bytes_per_s: float,
        line_bytes: int = 64,
    ) -> None:
        self.channels = channels
        self.peak_bandwidth = peak_bandwidth_bytes_per_s
        self.line_bytes = line_bytes
        self.stats = DramStats()

    def read_line(self, is_os: bool) -> None:
        self.stats.read_bytes += self.line_bytes
        if is_os:
            self.stats.os_read_bytes += self.line_bytes

    def write_line(self, is_os: bool) -> None:
        self.stats.write_bytes += self.line_bytes
        if is_os:
            self.stats.os_write_bytes += self.line_bytes

    def utilization(self, cycles: int, freq_hz: float, active_cores: int) -> float:
        """Fraction of the per-core share of peak bandwidth consumed."""
        return per_core_utilization(self.stats.total_bytes, cycles, freq_hz,
                                    self.peak_bandwidth, active_cores)

"""Simultaneous multi-threading support (Figure 3 SMT experiments).

The X5670 cores are 2-way SMT.  In the model, SMT is simply a
:class:`~repro.uarch.core.Core` run with two independent micro-op
traces: fetch round-robins between the threads every cycle, and the
ROB, reservation stations, load/store buffers, super queue, and all
cache levels are competitively shared — exactly the contention the
paper describes ("introducing instructions from multiple software
threads into the same pipeline causes contention for core resources").

This module provides the comparison harness used by the Figure 3
experiment: run a workload single-threaded, then run two independent
instances of it on one SMT core, and report both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.uarch.core import Core, CoreResult
from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.params import MachineParams
from repro.uarch.uop import MicroOp

TraceFactory = Callable[[int], Iterator[MicroOp]]
"""Builds the micro-op trace for hardware thread `tid`."""


@dataclass
class SmtComparison:
    baseline: CoreResult
    smt: CoreResult

    @property
    def ipc_gain(self) -> float:
        """Aggregate-IPC improvement of SMT over the single thread."""
        base = self.baseline.instructions / self.baseline.cycles
        smt = self.smt.instructions / self.smt.cycles
        return smt / base - 1.0

    @property
    def mlp_gain(self) -> float:
        if not self.baseline.mlp:
            return 0.0
        return self.smt.mlp / self.baseline.mlp - 1.0


def run_smt_comparison(
    params: MachineParams,
    trace_factory: TraceFactory,
    warm: Callable[[MemoryHierarchy], None] | None = None,
) -> SmtComparison:
    """Run the baseline (1 thread) and SMT (2 threads) configurations.

    Each configuration gets a fresh core and hierarchy; ``warm`` may
    pre-populate the caches (the runner passes the workload's warmup).
    """
    base_core = Core(params, MemoryHierarchy(params, core_id=0), core_id=0)
    if warm is not None:
        warm(base_core.hierarchy)
    baseline = base_core.run([trace_factory(0)])

    smt_core = Core(params.with_smt(2), MemoryHierarchy(params, core_id=0), core_id=0)
    if warm is not None:
        warm(smt_core.hierarchy)
    smt = smt_core.run([trace_factory(0), trace_factory(1)])
    return SmtComparison(baseline=baseline, smt=smt)

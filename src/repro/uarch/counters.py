"""Performance-counter surface (the simulator's "VTune").

:class:`CounterSet` flattens everything the experiments read — cycle
breakdowns, cache miss counters, MLP, bandwidth, sharing — into named
counters with the derived metrics used by the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: The counter schema: every scalar counter a ``CoreResult`` carries,
#: in the order ``to_counters`` exports them.  This tuple is the single
#: source of truth the static counter-schema lint rule cross-checks
#: against the ``CoreResult`` dataclass and the part/whole invariants
#: in :mod:`repro.core.validate` — add a counter here *and* as a
#: ``CoreResult`` field, or ``python -m repro lint`` fails the build.
COUNTER_NAMES: tuple[str, ...] = (
    "cycles",
    "instructions",
    "os_instructions",
    "committing_cycles",
    "committing_cycles_os",
    "stalled_cycles",
    "stalled_cycles_os",
    "memory_cycles",
    "superq_busy_cycles",
    "superq_requests",
    "mlp",
    "loads",
    "stores",
    "branches",
    "branch_mispredicts",
    "l1i_misses",
    "l1i_misses_os",
    "l2i_misses",
    "l2i_misses_os",
    "l1d_misses",
    "l2_demand_hits",
    "l2_demand_accesses",
    "llc_misses",
    "llc_data_refs",
    "remote_dirty_hits",
    "remote_dirty_hits_os",
    "offchip_bytes",
    "offchip_bytes_os",
)


@dataclass
class CounterSet:
    """A named bag of counters plus derived-metric helpers."""

    values: dict[str, float] = field(default_factory=dict)

    def __getitem__(self, name: str) -> float:
        return self.values[name]

    def get(self, name: str, default: float = 0.0) -> float:
        return self.values.get(name, default)

    def __setitem__(self, name: str, value: float) -> None:
        self.values[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self.values

    # -- derived metrics -------------------------------------------------
    @property
    def cycles(self) -> float:
        return self.values.get("cycles", 0.0)

    @property
    def instructions(self) -> float:
        return self.values.get("instructions", 0.0)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def app_ipc(self) -> float:
        """Application (user) instructions per total cycle."""
        if not self.cycles:
            return 0.0
        return (self.instructions - self.get("os_instructions")) / self.cycles

    @property
    def mlp(self) -> float:
        return self.get("mlp")

    def mpki(self, counter: str) -> float:
        """Misses (or any event) per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.get(counter) / self.instructions

    @property
    def committing_fraction(self) -> float:
        return self.get("committing_cycles") / self.cycles if self.cycles else 0.0

    @property
    def memory_cycles_fraction(self) -> float:
        return self.get("memory_cycles") / self.cycles if self.cycles else 0.0

    def as_dict(self) -> dict[str, float]:
        return dict(self.values)

    def merge_sum(self, other: "CounterSet") -> None:
        for key, value in other.values.items():
            self.values[key] = self.values.get(key, 0.0) + value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CounterSet {len(self.values)} counters, IPC={self.ipc:.2f}>"


def counters_from(core_result: Any) -> CounterSet:
    """Build a CounterSet from a CoreResult-like object."""
    return core_result.to_counters()

"""Three-level cache hierarchy with prefetchers, TLBs, and sharing hooks.

Per core: split 32 KB L1-I / L1-D and a private 256 KB L2.  The 12 MB LLC,
memory channels, and last-writer directory may be shared between cores
(the :class:`repro.uarch.chip.Chip` wires one of each across its cores).

Latency model: a demand access pays the latency of the level that hits,
plus TLB-walk penalties.  Prefetches run in the background (no latency
charged) but move real lines — they fill caches, evict victims, and
consume off-chip bandwidth, which is how prefetcher pollution (Figure 5)
and bandwidth overheads (Figure 7) emerge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.cache import Cache, LineState
from repro.uarch.coherence import LastWriterDirectory
from repro.uarch.dram import MemoryChannels
from repro.uarch.params import MachineParams
from repro.uarch.prefetch import (
    AdjacentLinePrefetcher,
    NextLinePrefetcher,
    StreamEntry,
    StreamPrefetcher,
)
from repro.uarch.tlb import make_tlbs


@dataclass
class AccessResult:
    """Outcome of one demand access."""

    latency: int
    level: str  # 'l1', 'l2', 'llc', or 'mem'
    off_core: bool  # missed the private L2 (enters the super queue)
    off_chip: bool  # missed the LLC (consumes memory bandwidth)


class MemoryHierarchy:
    """The memory system seen by one core."""

    def __init__(
        self,
        params: MachineParams,
        core_id: int = 0,
        shared_llc: Cache | None = None,
        dram: MemoryChannels | None = None,
        directory: LastWriterDirectory | None = None,
    ) -> None:
        self.params = params
        self.core_id = core_id
        self.l1i = Cache("L1-I", params.l1i)
        self.l1d = Cache("L1-D", params.l1d)
        self.l2 = Cache("L2", params.l2)
        self.llc = shared_llc if shared_llc is not None else Cache("LLC", params.llc)
        self.dram = dram if dram is not None else MemoryChannels(
            params.memory_channels, params.peak_bandwidth_bytes_per_s, params.line_bytes
        )
        self.directory = directory if directory is not None else LastWriterDirectory(
            params.line_bytes
        )
        self.itlb, self.dtlb = make_tlbs(
            params.itlb_entries,
            params.dtlb_entries,
            params.stlb_entries,
            params.page_bytes,
        )
        pf = params.prefetch
        # Line-number shift shared by the inlined prefetcher hooks
        # below (-1 falls back to division for a non-power-of-two line).
        lshift = (params.line_bytes.bit_length() - 1
                  if params.line_bytes & (params.line_bytes - 1) == 0 else -1)
        self._dcu_shift = lshift
        self._adj_shift = lshift
        self._l1i_next_shift = lshift
        self._l1i_next = NextLinePrefetcher(params.line_bytes) if pf.l1i_next_line else None
        self._dcu = NextLinePrefetcher(params.line_bytes) if pf.dcu_streamer else None
        self._adjacent = (
            AdjacentLinePrefetcher(params.line_bytes) if pf.adjacent_line else None
        )
        self._stream = (
            StreamPrefetcher(
                params.line_bytes,
                params.page_bytes,
                degree=pf.hw_prefetch_degree,
            )
            if pf.hw_prefetcher
            else None
        )
        # Stall-cycle contributions the paper folds into "Memory cycles".
        self.l2_instr_hit_stalls = 0
        self.itlb_miss_stalls = 0
        self.stlb_miss_stalls = 0
        self.off_core_instr_fetches = 0
        # Page-number shift for the translate fast path (0 disables it
        # when the page size is not a power of two).
        self._page_shift = (params.page_bytes.bit_length() - 1
                            if params.page_bytes & (params.page_bytes - 1) == 0
                            else 0)
        # Off-chip bandwidth limit: one line per `dram_interval` cycles of
        # this core's share of the channels.  Timed accesses (the core
        # passes `now`) queue behind earlier transfers; functional warming
        # passes no timestamp and leaves the queue untouched.
        share = params.peak_bandwidth_bytes_per_s / max(1, params.active_cores)
        self.dram_interval = max(1, int(params.line_bytes / share * params.freq_hz))
        self._dram_next_free = 0
        # Per-side lookup bundles for the access fast path.  Every
        # object here is created once and mutated in place for the
        # hierarchy's lifetime (stats merge in place, TLB/cache dicts
        # are never replaced), so the bundles stay valid.
        self._instr_side = (self.itlb, self.itlb._l1._map, self.itlb.stats,
                            self.l1i, self.l1i.stats)
        self._data_side = (self.dtlb, self.dtlb._l1._map, self.dtlb.stats,
                           self.l1d, self.l1d.stats)

    def _dram_queue_delay(self, now: int | None) -> int:
        """Reserve a line transfer slot; returns the queueing delay."""
        if now is None:
            return 0
        delay = max(0, self._dram_next_free - now)
        self._dram_next_free = max(self._dram_next_free, now) + self.dram_interval
        return delay

    # ------------------------------------------------------------------
    def access(
        self,
        addr: int,
        is_write: bool = False,
        is_instr: bool = False,
        is_os: bool = False,
        now: int | None = None,
    ) -> AccessResult:
        """Perform a demand access and return its latency and origin level.

        ``now`` (the core's current cycle) enables the off-chip bandwidth
        queue; untimed callers (functional warming, tests) omit it."""
        return AccessResult(*self.access_timed(addr, is_write, is_instr,
                                               is_os, now))

    def access_timed(
        self,
        addr: int,
        is_write: bool = False,
        is_instr: bool = False,
        is_os: bool = False,
        now: int | None = None,
    ) -> tuple[int, str, bool, bool]:
        """:meth:`access` without the result object.

        Returns ``(latency, level, off_core, off_chip)`` as a plain
        tuple — the replay hot path performs one of these per memory
        micro-op and per new code line, so the dataclass wrapper (and
        the method dispatch the common hit case would pay inside
        :class:`~repro.uarch.tlb.Tlb` and :class:`~repro.uarch.cache.Cache`)
        is hoisted here.  The inlined translate/L1-hit fast path below
        is statistic-for-statistic identical to the general walk.
        """
        params = self.params
        latency = 0

        # Address translation (fast path: L1-TLB hit, inlined).
        tlb, l1map, tstats, l1, l1stats = (
            self._instr_side if is_instr else self._data_side)
        shift = self._page_shift
        page = addr >> shift if shift else addr // tlb.page_bytes
        if page in l1map:
            del l1map[page]
            l1map[page] = None
            tstats.l1_hits += 1
        else:
            # Miss path, still inlined: same probes, fills, and counters
            # as Tlb.access (the page is known absent from the L1 array,
            # so the fills skip its membership re-check).
            tstats.l1_misses += 1
            stlb = tlb._stlb
            smap = stlb._map
            if page in smap:
                tstats.l2_hits += 1
                del smap[page]
                smap[page] = None
                latency += 2  # STLB hit adds a couple of cycles
                if is_instr:
                    self.itlb_miss_stalls += 2
            else:
                tstats.l2_misses += 1
                if len(smap) >= stlb.entries:
                    smap.pop(next(iter(smap)))
                smap[page] = None
                latency += params.tlb_miss_penalty
                if is_instr:
                    self.itlb_miss_stalls += params.tlb_miss_penalty
                else:
                    self.stlb_miss_stalls += params.tlb_miss_penalty
            if len(l1map) >= tlb._l1.entries:
                l1map.pop(next(iter(l1map)))
            l1map[page] = None

        if is_write:
            self.directory.record_write(addr, self.core_id)
        # L1 hit on a line with no in-flight-prefetch bookkeeping: the
        # overwhelmingly common case, inlined (same LRU bump, same stats).
        line = addr >> l1._line_shift
        cset = l1._sets[line % l1.num_sets]
        state = cset.get(line)
        if state is not None and not state.prefetched:
            del cset[line]
            cset[line] = state
            l1.consumed_pf_penalty = 0
            if is_write:
                state.dirty = True
            l1stats.demand_hits += 1
            if is_instr:
                l1stats.inst_hits += 1
                if is_os:
                    l1stats.os_inst_hits += 1
            else:
                l1stats.data_hits += 1
                if is_os:
                    l1stats.os_data_hits += 1
            return latency + l1.latency, "l1", False, False
        if state is not None:
            # Hit on a still-in-flight prefetch: the rare bookkeeping
            # case, routed through the cache's own method.
            l1.access(addr, is_write, is_instr, is_os)
            late_pf = l1.consumed_pf_penalty
            # (The DCU streamer trains on L1 misses, not hits.)
            if late_pf:
                # A hit on a still-in-flight DCU prefetch is logically an
                # L2 transaction that the prefetcher started early: credit
                # the L2's demand statistics (the counters VTune reads)
                # and treat deep fills as off-core for MLP purposes.
                stats = self.l2.stats
                stats.demand_hits += 1
                if is_instr:
                    stats.inst_hits += 1
                    if is_os:
                        stats.os_inst_hits += 1
                else:
                    stats.data_hits += 1
                    if is_os:
                        stats.os_data_hits += 1
            return (latency + l1.latency + late_pf, "l1",
                    late_pf >= self.llc.latency, False)

        # Plain L1 miss: record it inline (the probe above already did
        # the lookup — same counters Cache.access would bump).
        l1stats.demand_misses += 1
        if is_instr:
            l1stats.inst_misses += 1
            if is_os:
                l1stats.os_inst_misses += 1
        else:
            l1stats.data_misses += 1
            if is_os:
                l1stats.os_data_misses += 1
        # The L1 probe state survives the deeper walk (nothing below
        # touches this L1 before the refill), so the three miss paths
        # install the line into ``l1set`` directly.
        l1set = cset
        l1line = line

        # L1 miss -> L2 (probe inlined; same LRU bump and statistics as
        # Cache.access, with the prefetch-consumption bookkeeping kept).
        l2 = self.l2
        line = addr >> l2._line_shift
        cset = l2._sets[line % l2.num_sets]
        state = cset.get(line)
        stats = l2.stats
        if state is not None:
            del cset[line]
            cset[line] = state
            late_pf = 0
            if state.prefetched:
                state.prefetched = False
                stats.prefetch_useful += 1
                late_pf = state.pf_penalty
                state.pf_penalty = 0
            if is_write:
                state.dirty = True
            stats.demand_hits += 1
            if is_instr:
                stats.inst_hits += 1
                if is_os:
                    stats.os_inst_hits += 1
            else:
                stats.data_hits += 1
                if is_os:
                    stats.os_data_hits += 1
            # Refill L1 (fill_fast inlined; the line is known absent).
            if len(l1set) >= l1.assoc:
                old_line, old_state = next(iter(l1set.items()))
                del l1set[old_line]
                if old_state.dirty:
                    l1stats.writebacks += 1
                    self._fill_l2(old_line << l1._line_shift,
                                  dirty=True, is_os=False, quiet=True)
                if old_state.prefetched:
                    l1stats.prefetch_unused_evicted += 1
                old_state.dirty = is_write
                old_state.prefetched = False
                old_state.pf_penalty = 0
                l1set[l1line] = old_state
            else:
                l1set[l1line] = LineState(is_write, False, 0)
            self._run_l2_prefetchers(addr, hit=True, is_os=is_os, now=now)
            if not is_instr:
                dcu = self._dcu
                if dcu is not None:
                    # _run_dcu, inlined (with the target's L1-D probe
                    # hoisted: a resident next line proposes nothing).
                    dshift = self._dcu_shift
                    dline = (addr >> dshift if dshift >= 0
                             else addr // dcu.line_bytes)
                    if dline != dcu._last_line:
                        dcu._last_line = dline
                        t = (dline + 1) * dcu.line_bytes
                        tl = t >> l1._line_shift
                        tset = l1._sets[tl % l1.num_sets]
                        if tl not in tset:
                            self._prefetch_into_l1d(t, tl, tset)
            lat = latency + l1.latency + l2.latency + late_pf
            if is_instr:
                self.l2_instr_hit_stalls += l2.latency
            return lat, "l2", late_pf >= self.llc.latency, False
        stats.demand_misses += 1
        if is_instr:
            stats.inst_misses += 1
            if is_os:
                stats.os_inst_misses += 1
        else:
            stats.data_misses += 1
            if is_os:
                stats.os_data_misses += 1

        # L2 miss -> LLC (off-core; enters the super queue).
        llc = self.llc
        if is_instr:
            self.off_core_instr_fetches += 1
        else:
            if llc.contains(addr):
                # Remote-dirty classification only applies to blocks still
                # on chip — a block written long ago and since evicted
                # comes from memory, not from a remote cache (§3.1's
                # two-socket setup).
                self.directory.classify_llc_data_ref(addr, self.core_id, is_os)
            else:
                self.directory.stats.llc_data_refs += 1
        self._run_l2_prefetchers(addr, hit=False, is_os=is_os, now=now)
        # Probe the LLC only after the prefetchers ran: their fills can
        # evict from (but never insert) the missing line's set, and the
        # demand access must see the post-prefetch LRU state.
        line = addr >> llc._line_shift
        cset = llc._sets[line % llc.num_sets]
        state = cset.get(line)
        stats = llc.stats
        if state is not None:
            del cset[line]
            cset[line] = state
            if state.prefetched:
                state.prefetched = False
                stats.prefetch_useful += 1
                state.pf_penalty = 0
            if is_write:
                state.dirty = True
            stats.demand_hits += 1
            if is_instr:
                stats.inst_hits += 1
                if is_os:
                    stats.os_inst_hits += 1
            else:
                stats.data_hits += 1
                if is_os:
                    stats.os_data_hits += 1
            self._fill_l2(addr, is_write, is_os)
            # Refill L1 (fill_fast inlined; the line is known absent).
            if len(l1set) >= l1.assoc:
                old_line, old_state = next(iter(l1set.items()))
                del l1set[old_line]
                if old_state.dirty:
                    l1stats.writebacks += 1
                    self._fill_l2(old_line << l1._line_shift,
                                  dirty=True, is_os=False, quiet=True)
                if old_state.prefetched:
                    l1stats.prefetch_unused_evicted += 1
                old_state.dirty = is_write
                old_state.prefetched = False
                old_state.pf_penalty = 0
                l1set[l1line] = old_state
            else:
                l1set[l1line] = LineState(is_write, False, 0)
            if not is_instr:
                dcu = self._dcu
                if dcu is not None:
                    # _run_dcu, inlined (with the target's L1-D probe
                    # hoisted: a resident next line proposes nothing).
                    dshift = self._dcu_shift
                    dline = (addr >> dshift if dshift >= 0
                             else addr // dcu.line_bytes)
                    if dline != dcu._last_line:
                        dcu._last_line = dline
                        t = (dline + 1) * dcu.line_bytes
                        tl = t >> l1._line_shift
                        tset = l1._sets[tl % l1.num_sets]
                        if tl not in tset:
                            self._prefetch_into_l1d(t, tl, tset)
            return (
                latency + l1.latency + l2.latency + llc.latency,
                "llc",
                True,
                False,
            )
        stats.demand_misses += 1
        if is_instr:
            stats.inst_misses += 1
            if is_os:
                stats.os_inst_misses += 1
        else:
            stats.data_misses += 1
            if is_os:
                stats.os_data_misses += 1

        # LLC miss -> memory.
        self.dram.read_line(is_os)
        latency += self._dram_queue_delay(now)
        self._fill_llc(addr, is_write, is_os)
        self._fill_l2(addr, is_write, is_os)
        # Refill L1 (fill_fast inlined; the line is known absent).
        if len(l1set) >= l1.assoc:
            old_line, old_state = next(iter(l1set.items()))
            del l1set[old_line]
            if old_state.dirty:
                l1stats.writebacks += 1
                self._fill_l2(old_line << l1._line_shift,
                              dirty=True, is_os=False, quiet=True)
            if old_state.prefetched:
                l1stats.prefetch_unused_evicted += 1
            old_state.dirty = is_write
            old_state.prefetched = False
            old_state.pf_penalty = 0
            l1set[l1line] = old_state
        else:
            l1set[l1line] = LineState(is_write, False, 0)
        if not is_instr:
            dcu = self._dcu
            if dcu is not None:
                # _run_dcu, inlined (with the target's L1-D probe
                # hoisted: a resident next line proposes nothing).
                dshift = self._dcu_shift
                dline = (addr >> dshift if dshift >= 0
                         else addr // dcu.line_bytes)
                if dline != dcu._last_line:
                    dcu._last_line = dline
                    t = (dline + 1) * dcu.line_bytes
                    tl = t >> l1._line_shift
                    tset = l1._sets[tl % l1.num_sets]
                    if tl not in tset:
                        self._prefetch_into_l1d(t, tl, tset)
        return (
            latency + l1.latency + l2.latency + llc.latency + params.memory_latency,
            "mem",
            True,
            True,
        )

    # -- fills and writeback propagation --------------------------------
    def _fill_l1(self, l1: Cache, addr: int, dirty: bool) -> None:
        victim = l1.fill_fast(addr, dirty)
        if victim >= 0:
            # Dirty writeback into L2; may ripple downward.
            self._fill_l2(victim, dirty=True, is_os=False, quiet=True)

    def _fill_l2(self, addr: int, dirty: bool, is_os: bool, quiet: bool = False) -> None:
        # Cache.fill_fast, inlined (demand fill: not a prefetch).
        l2 = self.l2
        line = addr >> l2._line_shift
        cset = l2._sets[line % l2.num_sets]
        existing = cset.get(line)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            existing.prefetched = False
            existing.pf_penalty = 0
            return
        if len(cset) >= l2.assoc:
            old_line, old_state = next(iter(cset.items()))
            del cset[old_line]
            stats = l2.stats
            if old_state.dirty:
                stats.writebacks += 1
                self._fill_llc(old_line << l2._line_shift,
                               dirty=True, is_os=is_os, quiet=True)
            if old_state.prefetched:
                stats.prefetch_unused_evicted += 1
            old_state.dirty = dirty
            old_state.prefetched = False
            old_state.pf_penalty = 0
            cset[line] = old_state
        else:
            cset[line] = LineState(dirty, False, 0)

    def _fill_llc(self, addr: int, dirty: bool, is_os: bool, quiet: bool = False) -> None:
        # Cache.fill_fast, inlined (demand fill: not a prefetch).
        llc = self.llc
        line = addr >> llc._line_shift
        cset = llc._sets[line % llc.num_sets]
        existing = cset.get(line)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            existing.prefetched = False
            existing.pf_penalty = 0
            return
        if len(cset) >= llc.assoc:
            old_line, old_state = next(iter(cset.items()))
            del cset[old_line]
            stats = llc.stats
            if old_state.dirty:
                stats.writebacks += 1
                self.dram.write_line(is_os)
            if old_state.prefetched:
                stats.prefetch_unused_evicted += 1
            old_state.dirty = dirty
            old_state.prefetched = False
            old_state.pf_penalty = 0
            cset[line] = old_state
        else:
            cset[line] = LineState(dirty, False, 0)

    # -- prefetch machinery ----------------------------------------------
    def _prefetch_into_l1d(self, addr: int, l1line: int, l1set: dict) -> None:
        # The caller probed the L1-D set (``l1line`` absent from
        # ``l1set``) before paying for this call.
        l1d = self.l1d
        l2 = self.l2
        line = addr >> l2._line_shift
        l2_state = l2._sets[line % l2.num_sets].get(line)
        if l2_state is None:
            llc = self.llc
            line = addr >> llc._line_shift
            if line not in llc._sets[line % llc.num_sets]:
                # DCU prefetches that would go off-chip are dropped by the
                # hardware; modeling them as LLC fills would overstate
                # reach.
                return
        # If the L2 copy is itself a still-in-flight prefetch, the L1 copy
        # inherits the residual latency — chained prefetchers cannot make
        # data arrive sooner than memory delivers it.
        inherited = l2_state.pf_penalty if (l2_state and l2_state.prefetched) else 0
        # Cache.fill_fast, inlined: the probe above proved the line
        # absent, and nothing since touched this L1-D set.
        stats = l1d.stats
        if len(l1set) >= l1d.assoc:
            old_line, old_state = next(iter(l1set.items()))
            del l1set[old_line]
            if old_state.dirty:
                stats.writebacks += 1
            if old_state.prefetched:
                stats.prefetch_unused_evicted += 1
            old_state.dirty = False
            old_state.prefetched = True
            old_state.pf_penalty = inherited
            l1set[l1line] = old_state
        else:
            l1set[l1line] = LineState(False, True, inherited)
        stats.prefetch_issued += 1

    def _run_l2_prefetchers(self, addr: int, hit: bool, is_os: bool,
                            now: int | None = None) -> None:
        # AdjacentLinePrefetcher.observe, inlined (propose the buddy line
        # on a miss); the stream prefetcher keeps its stateful method.
        # Issue order (adjacent first, then stream) matches the proposal
        # order of the aggregated walk.
        l2 = self.l2
        l2sets = l2._sets
        l2shift = l2._line_shift
        l2nsets = l2.num_sets
        adjacent = self._adjacent
        if adjacent is not None and not hit:
            lb = adjacent.line_bytes
            line = addr >> self._adj_shift if self._adj_shift >= 0 else addr // lb
            t = (line ^ 1) * lb
            tl = t >> l2shift
            tset = l2sets[tl % l2nsets]
            if tl not in tset:
                self._prefetch_into_l2(t, is_os, now, tl, tset)
        stream = self._stream
        if stream is not None:
            # StreamPrefetcher.observe, inlined: train on every L2
            # demand access, propose ``degree`` lines ahead once the
            # stream is confident.  Proposal order (ascending distance)
            # and entry updates match the method exactly; resident
            # proposals are dropped by the same L2 probe
            # _prefetch_into_l2 would perform.
            sshift = stream._line_shift
            if sshift >= 0:
                sline = addr >> sshift
                spage = addr >> stream._page_shift
            else:
                sline = addr // stream.line_bytes
                spage = addr // stream.page_bytes
            table = stream._table
            entry = table.get(spage)
            if entry is None:
                if len(table) >= stream.table_entries:
                    table.pop(next(iter(table)))
                table[spage] = StreamEntry(sline)
            else:
                del table[spage]
                table[spage] = entry
                delta = sline - entry.last_line
                if delta:
                    direction = 1 if delta > 0 else -1
                    if direction == entry.direction:
                        entry.confidence = min(entry.confidence + 1, 4)
                    else:
                        entry.direction = direction
                        entry.confidence = 0
                    if entry.confidence >= stream.train_threshold:
                        page_base = spage * stream.lines_per_page
                        page_end = page_base + stream.lines_per_page
                        lb = stream.line_bytes
                        for k in range(1, stream.degree + 1):
                            target = sline + direction * k
                            if page_base <= target < page_end:
                                t = target * lb
                                tl = t >> l2shift
                                tset = l2sets[tl % l2nsets]
                                if tl not in tset:
                                    self._prefetch_into_l2(t, is_os, now,
                                                           tl, tset)
                    entry.last_line = sline

    def _prefetch_into_l2(self, addr: int, is_os: bool, now: int | None,
                          l2line: int, l2set: dict) -> None:
        # The caller probed the L2 set (``l2line`` absent from
        # ``l2set``) before paying for this call.
        l2 = self.l2
        llc = self.llc
        line = addr >> llc._line_shift
        if line not in llc._sets[line % llc.num_sets]:
            # Bring it on chip first; prefetch fills consume real bandwidth
            # and, when demanded soon after issue, still expose a large
            # share of the memory latency (a *late* prefetch).
            self.dram.read_line(is_os)
            pf_penalty = (self.params.memory_latency * 2) // 5
            pf_penalty += self._dram_queue_delay(now)
            self._fill_llc(addr, dirty=False, is_os=is_os)
        else:
            pf_penalty = (self.llc.latency * 2) // 5
        # Cache.fill_fast, inlined (prefetched install): the probe above
        # proved the line absent, and the LLC fill never touches the L2.
        stats = l2.stats
        if len(l2set) >= l2.assoc:
            old_line, old_state = next(iter(l2set.items()))
            del l2set[old_line]
            if old_state.dirty:
                stats.writebacks += 1
                self._fill_llc(old_line << l2._line_shift,
                               dirty=True, is_os=is_os, quiet=True)
            if old_state.prefetched:
                stats.prefetch_unused_evicted += 1
            old_state.dirty = False
            old_state.prefetched = True
            old_state.pf_penalty = pf_penalty
            l2set[l2line] = old_state
        else:
            l2set[l2line] = LineState(False, True, pf_penalty)
        stats.prefetch_issued += 1

    def prefetch_instruction(self, addr: int) -> None:
        """L1-I next-line prefetch hook, driven by the core's fetch unit."""
        pf = self._l1i_next
        if pf is None:
            return
        # NextLinePrefetcher.observe, inlined (see _run_dcu).
        lb = pf.line_bytes
        line = addr >> self._l1i_next_shift if self._l1i_next_shift >= 0 \
            else addr // lb
        if line == pf._last_line:
            return
        pf._last_line = line
        target = (line + 1) * lb
        l1i = self.l1i
        tline = target >> l1i._line_shift
        tset = l1i._sets[tline % l1i.num_sets]
        if tline in tset:
            return
        self._l1i_prefetch_miss(target, tline, tset)

    def _l1i_prefetch_miss(self, target: int, tline: int, tset: dict) -> None:
        """:meth:`prefetch_instruction` past the L1-I probe (line absent)."""
        if not self.l2.contains(target) and not self.llc.contains(target):
            return  # next-line I-prefetch does not go off-chip
        # Cache.fill_fast, inlined (prefetched install, line absent).
        l1i = self.l1i
        stats = l1i.stats
        if len(tset) >= l1i.assoc:
            old_line, old_state = next(iter(tset.items()))
            del tset[old_line]
            if old_state.dirty:
                stats.writebacks += 1
            if old_state.prefetched:
                stats.prefetch_unused_evicted += 1
            old_state.dirty = False
            old_state.prefetched = True
            old_state.pf_penalty = 0
            tset[tline] = old_state
        else:
            tset[tline] = LineState(False, True, 0)
        stats.prefetch_issued += 1

    def invalidate_private(self, addr: int) -> None:
        """Coherence invalidation: drop the line from L1-D/L1-I/L2."""
        self.l1d.invalidate(addr)
        self.l1i.invalidate(addr)
        self.l2.invalidate(addr)

    # ------------------------------------------------------------------
    def warm_batch(self, ops) -> None:
        """Run a warming access sequence through the hierarchy.

        ``ops`` is an iterable of ``(addr, is_write, is_instr, is_os)``
        tuples (see :meth:`repro.trace.columns.ColumnBatch.access_ops`).
        Each op is exactly an :meth:`access_timed` call; the translate +
        L1-hit case — the overwhelmingly common warming outcome — is
        inlined here so the per-access call overhead is only paid on
        misses.  Statistic-for-statistic identical to calling
        :meth:`access_timed` per op.
        """
        page_shift = self._page_shift
        iside = self._instr_side
        dside = self._data_side
        access = self.access_timed
        record_write = self.directory.record_write
        core_id = self.core_id
        for addr, is_write, is_instr, is_os in ops:
            tlb, l1map, tstats, l1, l1stats = iside if is_instr else dside
            if page_shift and (addr >> page_shift) in l1map:
                line = addr >> l1._line_shift
                cset = l1._sets[line % l1.num_sets]
                st = cset.get(line)
                if st is not None and not st.prefetched:
                    page = addr >> page_shift
                    del l1map[page]
                    l1map[page] = None
                    tstats.l1_hits += 1
                    if is_write:
                        record_write(addr, core_id)
                        st.dirty = True
                    del cset[line]
                    cset[line] = st
                    l1.consumed_pf_penalty = 0
                    l1stats.demand_hits += 1
                    if is_instr:
                        l1stats.inst_hits += 1
                        if is_os:
                            l1stats.os_inst_hits += 1
                    else:
                        l1stats.data_hits += 1
                        if is_os:
                            l1stats.os_data_hits += 1
                    continue
            access(addr, is_write, is_instr, is_os)

    def warm_access(self, addr: int, is_write: bool = False, is_instr: bool = False) -> None:
        """Functional-only access used to warm caches without timing."""
        self.access(addr, is_write, is_instr, is_os=False)

"""Three-level cache hierarchy with prefetchers, TLBs, and sharing hooks.

Per core: split 32 KB L1-I / L1-D and a private 256 KB L2.  The 12 MB LLC,
memory channels, and last-writer directory may be shared between cores
(the :class:`repro.uarch.chip.Chip` wires one of each across its cores).

Latency model: a demand access pays the latency of the level that hits,
plus TLB-walk penalties.  Prefetches run in the background (no latency
charged) but move real lines — they fill caches, evict victims, and
consume off-chip bandwidth, which is how prefetcher pollution (Figure 5)
and bandwidth overheads (Figure 7) emerge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.cache import Cache
from repro.uarch.coherence import LastWriterDirectory
from repro.uarch.dram import MemoryChannels
from repro.uarch.params import MachineParams
from repro.uarch.prefetch import (
    AdjacentLinePrefetcher,
    NextLinePrefetcher,
    StreamPrefetcher,
)
from repro.uarch.tlb import make_tlbs


@dataclass
class AccessResult:
    """Outcome of one demand access."""

    latency: int
    level: str  # 'l1', 'l2', 'llc', or 'mem'
    off_core: bool  # missed the private L2 (enters the super queue)
    off_chip: bool  # missed the LLC (consumes memory bandwidth)


class MemoryHierarchy:
    """The memory system seen by one core."""

    def __init__(
        self,
        params: MachineParams,
        core_id: int = 0,
        shared_llc: Cache | None = None,
        dram: MemoryChannels | None = None,
        directory: LastWriterDirectory | None = None,
    ) -> None:
        self.params = params
        self.core_id = core_id
        self.l1i = Cache("L1-I", params.l1i)
        self.l1d = Cache("L1-D", params.l1d)
        self.l2 = Cache("L2", params.l2)
        self.llc = shared_llc if shared_llc is not None else Cache("LLC", params.llc)
        self.dram = dram if dram is not None else MemoryChannels(
            params.memory_channels, params.peak_bandwidth_bytes_per_s, params.line_bytes
        )
        self.directory = directory if directory is not None else LastWriterDirectory(
            params.line_bytes
        )
        self.itlb, self.dtlb = make_tlbs(
            params.itlb_entries,
            params.dtlb_entries,
            params.stlb_entries,
            params.page_bytes,
        )
        pf = params.prefetch
        self._l1i_next = NextLinePrefetcher(params.line_bytes) if pf.l1i_next_line else None
        self._dcu = NextLinePrefetcher(params.line_bytes) if pf.dcu_streamer else None
        self._adjacent = (
            AdjacentLinePrefetcher(params.line_bytes) if pf.adjacent_line else None
        )
        self._stream = (
            StreamPrefetcher(
                params.line_bytes,
                params.page_bytes,
                degree=pf.hw_prefetch_degree,
            )
            if pf.hw_prefetcher
            else None
        )
        # Stall-cycle contributions the paper folds into "Memory cycles".
        self.l2_instr_hit_stalls = 0
        self.itlb_miss_stalls = 0
        self.stlb_miss_stalls = 0
        self.off_core_instr_fetches = 0
        # Off-chip bandwidth limit: one line per `dram_interval` cycles of
        # this core's share of the channels.  Timed accesses (the core
        # passes `now`) queue behind earlier transfers; functional warming
        # passes no timestamp and leaves the queue untouched.
        share = params.peak_bandwidth_bytes_per_s / max(1, params.active_cores)
        self.dram_interval = max(1, int(params.line_bytes / share * params.freq_hz))
        self._dram_next_free = 0

    def _dram_queue_delay(self, now: int | None) -> int:
        """Reserve a line transfer slot; returns the queueing delay."""
        if now is None:
            return 0
        delay = max(0, self._dram_next_free - now)
        self._dram_next_free = max(self._dram_next_free, now) + self.dram_interval
        return delay

    # ------------------------------------------------------------------
    def access(
        self,
        addr: int,
        is_write: bool = False,
        is_instr: bool = False,
        is_os: bool = False,
        now: int | None = None,
    ) -> AccessResult:
        """Perform a demand access and return its latency and origin level.

        ``now`` (the core's current cycle) enables the off-chip bandwidth
        queue; untimed callers (functional warming, tests) omit it."""
        params = self.params
        latency = 0

        # Address translation.
        tlb = self.itlb if is_instr else self.dtlb
        outcome = tlb.access(addr)
        if outcome == "l2":
            latency += 2  # STLB hit adds a couple of cycles
            if is_instr:
                self.itlb_miss_stalls += 2
        elif outcome == "miss":
            latency += params.tlb_miss_penalty
            if is_instr:
                self.itlb_miss_stalls += params.tlb_miss_penalty
            else:
                self.stlb_miss_stalls += params.tlb_miss_penalty

        l1 = self.l1i if is_instr else self.l1d
        if is_write:
            self.directory.record_write(addr, self.core_id)
        if l1.access(addr, is_write, is_instr, is_os):
            late_pf = l1.consumed_pf_penalty
            # (The DCU streamer trains on L1 misses, not hits.)
            if late_pf:
                # A hit on a still-in-flight DCU prefetch is logically an
                # L2 transaction that the prefetcher started early: credit
                # the L2's demand statistics (the counters VTune reads)
                # and treat deep fills as off-core for MLP purposes.
                stats = self.l2.stats
                stats.demand_hits += 1
                if is_instr:
                    stats.inst_hits += 1
                    if is_os:
                        stats.os_inst_hits += 1
                else:
                    stats.data_hits += 1
                    if is_os:
                        stats.os_data_hits += 1
            return AccessResult(latency + l1.latency + late_pf, "l1",
                                late_pf >= self.llc.latency, False)

        # L1 miss -> L2.
        if self.l2.access(addr, is_write, is_instr, is_os):
            late_pf = self.l2.consumed_pf_penalty
            self._fill_l1(l1, addr, is_write)
            self._run_l2_prefetchers(addr, hit=True, is_os=is_os, now=now)
            if not is_instr and self._dcu is not None:
                self._run_dcu(addr)
            lat = latency + l1.latency + self.l2.latency + late_pf
            if is_instr:
                self.l2_instr_hit_stalls += self.l2.latency
            return AccessResult(lat, "l2", late_pf >= self.llc.latency, False)

        # L2 miss -> LLC (off-core; enters the super queue).
        if is_instr:
            self.off_core_instr_fetches += 1
        if not is_instr and self.llc.contains(addr):
            # Remote-dirty classification only applies to blocks still on
            # chip — a block written long ago and since evicted comes from
            # memory, not from a remote cache (§3.1's two-socket setup).
            self.directory.classify_llc_data_ref(addr, self.core_id, is_os)
        elif not is_instr:
            self.directory.stats.llc_data_refs += 1
        self._run_l2_prefetchers(addr, hit=False, is_os=is_os, now=now)
        if self.llc.access(addr, is_write, is_instr, is_os):
            self._fill_l2(addr, is_write, is_os)
            self._fill_l1(l1, addr, is_write)
            if not is_instr and self._dcu is not None:
                self._run_dcu(addr)
            return AccessResult(
                latency + l1.latency + self.l2.latency + self.llc.latency,
                "llc",
                True,
                False,
            )

        # LLC miss -> memory.
        self.dram.read_line(is_os)
        latency += self._dram_queue_delay(now)
        self._fill_llc(addr, is_write, is_os)
        self._fill_l2(addr, is_write, is_os)
        self._fill_l1(l1, addr, is_write)
        if not is_instr and self._dcu is not None:
            self._run_dcu(addr)
        return AccessResult(
            latency + l1.latency + self.l2.latency + self.llc.latency + params.memory_latency,
            "mem",
            True,
            True,
        )

    # -- fills and writeback propagation --------------------------------
    def _fill_l1(self, l1: Cache, addr: int, dirty: bool) -> None:
        victim = l1.fill(addr, dirty=dirty)
        if victim is not None and victim.dirty:
            # Writeback into L2; may ripple downward.
            self._fill_l2(victim.addr, dirty=True, is_os=False, quiet=True)

    def _fill_l2(self, addr: int, dirty: bool, is_os: bool, quiet: bool = False) -> None:
        victim = self.l2.fill(addr, dirty=dirty)
        if victim is not None and victim.dirty:
            self._fill_llc(victim.addr, dirty=True, is_os=is_os, quiet=True)

    def _fill_llc(self, addr: int, dirty: bool, is_os: bool, quiet: bool = False) -> None:
        victim = self.llc.fill(addr, dirty=dirty)
        if victim is not None and victim.dirty:
            self.dram.write_line(is_os)

    # -- prefetch machinery ----------------------------------------------
    def _run_dcu(self, addr: int) -> None:
        for target in self._dcu.observe(addr, hit=True):
            self._prefetch_into_l1d(target)

    def _prefetch_into_l1d(self, addr: int) -> None:
        if self.l1d.contains(addr):
            return
        l2_state = self.l2.peek_state(addr)
        if l2_state is None and not self.llc.contains(addr):
            # DCU prefetches that would go off-chip are dropped by the
            # hardware; modeling them as LLC fills would overstate reach.
            return
        # If the L2 copy is itself a still-in-flight prefetch, the L1 copy
        # inherits the residual latency — chained prefetchers cannot make
        # data arrive sooner than memory delivers it.
        inherited = l2_state.pf_penalty if (l2_state and l2_state.prefetched) else 0
        self.l1d.fill(addr, prefetched=True, pf_penalty=inherited)

    def _run_l2_prefetchers(self, addr: int, hit: bool, is_os: bool,
                            now: int | None = None) -> None:
        proposals: list[int] = []
        if self._adjacent is not None:
            proposals.extend(self._adjacent.observe(addr, hit))
        if self._stream is not None:
            proposals.extend(self._stream.observe(addr, hit))
        for target in proposals:
            self._prefetch_into_l2(target, is_os, now)

    def _prefetch_into_l2(self, addr: int, is_os: bool,
                          now: int | None = None) -> None:
        if self.l2.contains(addr):
            return
        if not self.llc.contains(addr):
            # Bring it on chip first; prefetch fills consume real bandwidth
            # and, when demanded soon after issue, still expose a large
            # share of the memory latency (a *late* prefetch).
            self.dram.read_line(is_os)
            pf_penalty = (self.params.memory_latency * 2) // 5
            pf_penalty += self._dram_queue_delay(now)
            self._fill_llc(addr, dirty=False, is_os=is_os)
        else:
            pf_penalty = (self.llc.latency * 2) // 5
        victim = self.l2.fill(addr, prefetched=True, pf_penalty=pf_penalty)
        if victim is not None and victim.dirty:
            self._fill_llc(victim.addr, dirty=True, is_os=is_os, quiet=True)

    def prefetch_instruction(self, addr: int) -> None:
        """L1-I next-line prefetch hook, driven by the core's fetch unit."""
        if self._l1i_next is None:
            return
        for target in self._l1i_next.observe(addr, hit=True):
            if self.l1i.contains(target):
                continue
            if not self.l2.contains(target) and not self.llc.contains(target):
                continue  # next-line I-prefetch does not go off-chip
            self.l1i.fill(target, prefetched=True)

    def invalidate_private(self, addr: int) -> None:
        """Coherence invalidation: drop the line from L1-D/L1-I/L2."""
        self.l1d.invalidate(addr)
        self.l1i.invalidate(addr)
        self.l2.invalidate(addr)

    # ------------------------------------------------------------------
    def warm_access(self, addr: int, is_write: bool = False, is_instr: bool = False) -> None:
        """Functional-only access used to warm caches without timing."""
        self.access(addr, is_write, is_instr, is_os=False)

"""Inline suppression comments.

A finding is silenced by a comment on the line it is reported at, or on
the *first line of the logical statement* that spans it::

    addr = hash(key) % n  # repro-lint: disable=builtin-hash -- int keys only

    result = combine(   # repro-lint: disable=builtin-hash -- int keys only
        hash(key),      # finding reported here, suppressed above
        nbuckets)

For compound statements (``def``, ``class``, ``if``, ``for``, ...) the
first line covers only the *header* — decorators through the line
before the first body statement — so a suppression on a ``def`` line
silences a finding on its (possibly multi-line, decorated) signature
without swallowing the entire body.

Several rules may be disabled at once (``disable=rule-a,rule-b``).  The
``-- reason`` part is mandatory: a suppression that does not say *why*
is itself a lint error (rule ``bad-suppression``), as is one naming a
rule the engine does not know — both would otherwise rot silently.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.lint.findings import Finding

#: Statements whose span must NOT anchor wholesale to their first line:
#: only the header (decorators .. ``body[0].lineno - 1``) does.
_COMPOUND = tuple(
    node_type for node_type in (
        ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
        ast.If, ast.For, ast.AsyncFor, ast.While, ast.With,
        ast.AsyncWith, ast.Try,
        getattr(ast, "TryStar", None), getattr(ast, "Match", None))
    if node_type is not None)


def statement_anchors(tree: ast.Module) -> dict[int, int]:
    """Map every line a statement spans to the statement's first line.

    ``ast.walk`` yields parents before children, so inner statements
    overwrite the entries of enclosing ones: a finding inside an ``if``
    body anchors to its own statement, not the ``if`` header.
    """
    anchors: dict[int, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        first = node.lineno
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            decorators = [d.lineno for d in node.decorator_list]
            first = min([first] + decorators)
        if isinstance(node, _COMPOUND):
            body = getattr(node, "body", None) or [node]
            last = max(first, body[0].lineno - 1)
        else:
            last = node.end_lineno or first
        for lineno in range(first, last + 1):
            anchors[lineno] = first
    return anchors

#: ``# repro-lint: disable=<rules>[ -- <reason>]`` anywhere in a line.
_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-]*)"
    r"(?:\s*--\s*(.*))?$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed disable comment."""

    line: int
    rules: frozenset[str]
    reason: str


def parse_suppressions(path: str, lines: list[str],
                       known_rules: frozenset[str],
                       ) -> tuple[dict[int, Suppression], list[Finding]]:
    """Scan source ``lines`` for disable comments.

    Returns ``(by_line, findings)`` where ``by_line`` maps a 1-based
    line number to its suppression and ``findings`` carries the
    ``bad-suppression`` errors for malformed comments.
    """
    by_line: dict[int, Suppression] = {}
    findings: list[Finding] = []
    for lineno, text in enumerate(lines, start=1):
        match = _PATTERN.search(text)
        if match is None:
            continue
        col = match.start() + 1
        rules = frozenset(
            name.strip() for name in match.group(1).split(",")
            if name.strip()
        )
        reason = (match.group(2) or "").strip()
        if not rules:
            findings.append(Finding(
                "bad-suppression", path, lineno, col, "error",
                "suppression names no rules "
                "(`# repro-lint: disable=<rule> -- <reason>`)"))
            continue
        unknown = sorted(rules - known_rules)
        if unknown:
            findings.append(Finding(
                "bad-suppression", path, lineno, col, "error",
                f"suppression names unknown rule(s): {', '.join(unknown)}"))
        if not reason:
            findings.append(Finding(
                "bad-suppression", path, lineno, col, "error",
                "suppression has no reason — append `-- <why this is "
                "safe>`; reasonless suppressions rot"))
            # A reasonless suppression still suppresses: the author's
            # intent is clear, and the bad-suppression error already
            # forces a fix — double-reporting the original finding
            # would only obscure it.
        by_line[lineno] = Suppression(lineno, rules, reason)
    return by_line, findings


def is_suppressed(finding: Finding,
                  by_line: dict[int, Suppression],
                  anchors: dict[int, int] | None = None) -> bool:
    """True if ``finding`` is disabled on its own line or on the first
    line of the logical statement spanning it (``anchors``)."""
    candidates = [finding.line]
    if anchors is not None:
        anchor = anchors.get(finding.line)
        if anchor is not None and anchor != finding.line:
            candidates.append(anchor)
    for lineno in candidates:
        suppression = by_line.get(lineno)
        if suppression is not None and finding.rule in suppression.rules:
            return True
    return False

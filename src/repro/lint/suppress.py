"""Inline suppression comments.

A finding is silenced by a comment *on the line it is reported at*::

    addr = hash(key) % n  # repro-lint: disable=builtin-hash -- int keys only

Several rules may be disabled at once (``disable=rule-a,rule-b``).  The
``-- reason`` part is mandatory: a suppression that does not say *why*
is itself a lint error (rule ``bad-suppression``), as is one naming a
rule the engine does not know — both would otherwise rot silently.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.lint.findings import Finding

#: ``# repro-lint: disable=<rules>[ -- <reason>]`` anywhere in a line.
_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-]*)"
    r"(?:\s*--\s*(.*))?$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed disable comment."""

    line: int
    rules: frozenset[str]
    reason: str


def parse_suppressions(path: str, lines: list[str],
                       known_rules: frozenset[str],
                       ) -> tuple[dict[int, Suppression], list[Finding]]:
    """Scan source ``lines`` for disable comments.

    Returns ``(by_line, findings)`` where ``by_line`` maps a 1-based
    line number to its suppression and ``findings`` carries the
    ``bad-suppression`` errors for malformed comments.
    """
    by_line: dict[int, Suppression] = {}
    findings: list[Finding] = []
    for lineno, text in enumerate(lines, start=1):
        match = _PATTERN.search(text)
        if match is None:
            continue
        col = match.start() + 1
        rules = frozenset(
            name.strip() for name in match.group(1).split(",")
            if name.strip()
        )
        reason = (match.group(2) or "").strip()
        if not rules:
            findings.append(Finding(
                "bad-suppression", path, lineno, col, "error",
                "suppression names no rules "
                "(`# repro-lint: disable=<rule> -- <reason>`)"))
            continue
        unknown = sorted(rules - known_rules)
        if unknown:
            findings.append(Finding(
                "bad-suppression", path, lineno, col, "error",
                f"suppression names unknown rule(s): {', '.join(unknown)}"))
        if not reason:
            findings.append(Finding(
                "bad-suppression", path, lineno, col, "error",
                "suppression has no reason — append `-- <why this is "
                "safe>`; reasonless suppressions rot"))
            # A reasonless suppression still suppresses: the author's
            # intent is clear, and the bad-suppression error already
            # forces a fix — double-reporting the original finding
            # would only obscure it.
        by_line[lineno] = Suppression(lineno, rules, reason)
    return by_line, findings


def is_suppressed(finding: Finding,
                  by_line: dict[int, Suppression]) -> bool:
    """True if ``finding``'s line carries a disable for its rule."""
    suppression = by_line.get(finding.line)
    return suppression is not None and finding.rule in suppression.rules

"""Content-addressed result cache for ``repro lint``.

Lint output is a pure function of (file bytes, rule set), so results
cache by content hash with no invalidation protocol at all:

* the **rule-set version** is a SHA-256 over the lint package's own
  source files — editing any rule silently retires every old entry;
* a **file entry** (``file-<sha>.json``) keys the per-file-rule
  findings of one file by ``sha256(version | rules | path | bytes)``;
* a **tree entry** (``tree-<sha>.json``) keys the *final* filtered,
  sorted finding list of a whole run by the sorted ``(path, sha)``
  manifest — a warm re-lint hashes the files and reads one JSON.

Entries live under ``$REPRO_CACHE_DIR`` (or ``$XDG_CACHE_HOME/repro``,
default ``~/.cache/repro``) in a ``lint-v1`` subdirectory.  The
location logic intentionally duplicates ``repro.core.store`` rather
than importing it: the ``import-layering`` table declares ``lint``
imports nothing, so the linter stays loadable without executing any
simulator code.  Every cache operation is best-effort — a read-only or
corrupt cache degrades to a cold run, never to an error.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

_VERSION_MEMO: str | None = None


def cache_dir() -> pathlib.Path:
    # repro-lint: sanitizer -- environment chooses where entries live, never their content
    """``lint-v1`` under the repro cache root (not created yet)."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        base = pathlib.Path(override)
    else:
        xdg = os.environ.get("XDG_CACHE_HOME")
        base = (pathlib.Path(xdg) if xdg
                else pathlib.Path.home() / ".cache") / "repro"
    return base / "lint-v1"


def ruleset_version() -> str:
    """SHA-256 over the lint package's own sources, memoized."""
    global _VERSION_MEMO
    if _VERSION_MEMO is None:
        package = pathlib.Path(__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            digest.update(path.relative_to(package).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _VERSION_MEMO = digest.hexdigest()
    return _VERSION_MEMO


def file_digest(data: bytes) -> str:
    """Hex SHA-256 of one file's bytes (the cache's only key material)."""
    return hashlib.sha256(data).hexdigest()


class LintCache:
    """A flat directory of small JSON payloads, keyed by content."""

    def __init__(self, base: pathlib.Path | None = None) -> None:
        self.base = base if base is not None else cache_dir()

    def _path(self, key: str) -> pathlib.Path:
        return self.base / f"{key}.json"

    def get(self, key: str) -> dict | None:
        try:
            raw = self._path(key).read_text(encoding="utf-8")
            payload = json.loads(raw)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, payload: dict) -> None:
        try:
            self.base.mkdir(parents=True, exist_ok=True)
            tmp = self._path(key).with_suffix(f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(payload, sort_keys=True),
                           encoding="utf-8")
            tmp.replace(self._path(key))
        except OSError:
            pass  # best-effort: a cold run is always correct

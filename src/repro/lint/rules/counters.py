"""The counter-schema rule: static mirror of ``core/validate.py``.

The runtime validator rejects *values* that violate physical
invariants; this rule rejects *names* that cannot line up in the first
place, at lint time:

* the declarations in ``uarch/counters.py`` (``COUNTER_NAMES``) and the
  ``CoreResult`` dataclass must agree exactly — a counter field that is
  not declared never reaches ``to_counters``/figures, and a declared
  name without a field crashes ``to_counters``;
* every attribute stored on a ``CoreResult``-typed variable in
  ``uarch/*`` and ``machine/*`` must be a real field — a typo'd
  ``result.l1i_missess += 1`` is legal Python (dataclasses are open)
  and silently drops the event on the floor;
* every part/whole pair the validator enforces (module-level
  ``*_PAIRS`` tables of 2-string tuples) must name real fields, and a
  pair must not relate a counter to itself.

The rule is structural, not path-hard-coded: it activates whenever the
linted tree contains a ``counters.py`` declaring ``COUNTER_NAMES``, so
fixture trees exercise it the same way the real tree does.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.rules import ProjectRule

#: The name of the declaration tuple looked up in ``counters.py``.
DECLARATION_NAME = "COUNTER_NAMES"

#: Annotations that mark a ``CoreResult`` field as a scalar counter.
_NUMERIC_ANNOTATIONS = frozenset({"int", "float"})


def _string_tuple(node: ast.expr) -> list[str] | None:
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    names: list[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        names.append(element.value)
    return names


def _assign_targets(node: ast.stmt) -> list[tuple[str, ast.expr]]:
    """``(name, value)`` for simple Name assignments."""
    if isinstance(node, ast.Assign):
        return [(target.id, node.value) for target in node.targets
                if isinstance(target, ast.Name)]
    if (isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.value is not None):
        return [(node.target.id, node.value)]
    return []


def _annotation_name(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value  # string annotation
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class CounterSchemaRule(ProjectRule):
    """Cross-check counter increments, declarations, and invariants."""

    name = "counter-schema"
    severity = "error"
    description = ("counter names in uarch/machine must match the "
                   "declarations in counters.py and the validator's "
                   "part/whole pairs")

    # -- discovery -----------------------------------------------------
    def _find_declarations(self, contexts):
        for ctx in contexts:
            if not ctx.path.endswith("counters.py"):
                continue
            for node in ctx.tree.body:
                for name, value in _assign_targets(node):
                    if name != DECLARATION_NAME:
                        continue
                    names = _string_tuple(value)
                    if names is not None:
                        return ctx, node, names
        return None

    def _find_core_result(self, contexts):
        for ctx in contexts:
            for node in ast.walk(ctx.tree):
                if (isinstance(node, ast.ClassDef)
                        and node.name == "CoreResult"):
                    fields: dict[str, tuple[int, str | None]] = {}
                    for stmt in node.body:
                        if (isinstance(stmt, ast.AnnAssign)
                                and isinstance(stmt.target, ast.Name)):
                            annotation = _annotation_name(stmt.annotation)
                            fields[stmt.target.id] = (stmt.lineno,
                                                      annotation)
                    return ctx, node, fields
        return None

    # -- checks --------------------------------------------------------
    def check_project(self, contexts: List) -> Iterable[Finding]:
        declaration = self._find_declarations(contexts)
        if declaration is None:
            return  # tree has no counter schema; nothing to enforce
        decl_ctx, decl_node, declared = declaration
        core = self._find_core_result(contexts)
        if core is None:
            yield self.finding(
                decl_ctx, decl_node,
                f"{DECLARATION_NAME} is declared but no CoreResult "
                "class exists in the linted tree; the schema cannot "
                "be checked")
            return
        core_ctx, core_node, fields = core

        duplicates = {name for name in declared
                      if declared.count(name) > 1}
        for name in sorted(duplicates):
            yield self.finding(
                decl_ctx, decl_node,
                f"{DECLARATION_NAME} declares {name!r} more than once")
        for name in declared:
            if name not in fields:
                yield self.finding(
                    decl_ctx, decl_node,
                    f"{DECLARATION_NAME} declares {name!r} but "
                    "CoreResult has no such field; to_counters() "
                    "would raise AttributeError")
        declared_set = set(declared)
        for name, (lineno, annotation) in fields.items():
            if (annotation in _NUMERIC_ANNOTATIONS
                    and name not in declared_set):
                yield Finding(
                    self.name, core_ctx.path, lineno, 1, self.severity,
                    f"CoreResult field {name!r} is a numeric counter "
                    f"but is not declared in {DECLARATION_NAME}; it "
                    "would never reach to_counters() or the figures")

        yield from self._check_pairs(contexts, fields)
        yield from self._check_stores(contexts, fields)

    def _check_pairs(self, contexts, fields) -> Iterable[Finding]:
        for ctx in contexts:
            for node in ctx.tree.body:
                for name, value in _assign_targets(node):
                    if not name.endswith("_PAIRS"):
                        continue
                    if not isinstance(value, (ast.Tuple, ast.List)):
                        continue
                    for element in value.elts:
                        pair = _string_tuple(element)
                        if pair is None or len(pair) != 2:
                            continue
                        part, whole = pair
                        for counter in pair:
                            if counter not in fields:
                                yield self.finding(
                                    ctx, element,
                                    f"{name} relates {part!r} to "
                                    f"{whole!r}, but {counter!r} is "
                                    "not a CoreResult field; the "
                                    "invariant can never be checked")
                        if part == whole:
                            yield self.finding(
                                ctx, element,
                                f"{name} relates {part!r} to itself; "
                                "a part/whole invariant needs two "
                                "distinct counters")

    def _check_stores(self, contexts, fields) -> Iterable[Finding]:
        for ctx in contexts:
            if not any(segment in ("uarch", "machine")
                       for segment in ctx.path.split("/")[:-1]):
                continue
            result_vars = self._core_result_vars(ctx.tree)
            if not result_vars:
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.AugAssign):
                    targets = [node.target]
                elif isinstance(node, ast.Assign):
                    targets = node.targets
                else:
                    continue
                for target in targets:
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in result_vars):
                        continue
                    if target.attr not in fields:
                        yield self.finding(
                            ctx, target,
                            f"{target.value.id}.{target.attr} "
                            "increments a counter CoreResult does not "
                            "declare; dataclasses accept the store "
                            "silently and the event never reaches a "
                            "figure — add the field and declare it in "
                            f"{DECLARATION_NAME}, or fix the typo")

    @staticmethod
    def _core_result_vars(tree: ast.Module) -> set[str]:
        """Names statically known to hold a ``CoreResult``."""
        names: set[str] = set()
        for node in ast.walk(tree):
            for name, value in _assign_targets(node):
                if (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id == "CoreResult"):
                    names.add(name)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = (node.args.posonlyargs + node.args.args
                        + node.args.kwonlyargs)
                for arg in args:
                    if _annotation_name(arg.annotation) == "CoreResult":
                        names.add(arg.arg)
        return names

"""Layering rules.

The capture/replay pipeline is only sound if every micro-op stream
actually goes through it: a module that drains ``app.trace()`` on its
own bypasses capture (so the run can never be replayed or
deduplicated), bypasses the runaway-trace watchdog (so a wedged serve
loop hangs instead of raising), and is invisible to the pipeline taps.
The rule enforces the module boundary the refactor established.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.rules import Rule

#: Methods whose call sites constitute direct trace consumption.
_TRACE_METHODS = frozenset({"trace", "trace_segments", "cluster_op_stream"})

#: Files (relative to the lint root) and directories allowed to touch
#: raw traces: the trace package itself, and the runner facade.
_ALLOWED_DIR = "trace"
_ALLOWED_FILES = ("core/runner.py",)


def _called_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


#: ``time`` module attributes that read a real clock or block on one.
#: The simulated fleet advances time by popping events off a heap; any
#: of these leaking into ``cluster/`` couples a run to the host.
_CLOCK_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "sleep",
    "perf_counter", "perf_counter_ns", "process_time",
    "process_time_ns",
})

#: Directory component whose files must stay on simulated time.
_CLUSTER_DIR = "cluster"


class ClusterClockRule(Rule):
    """Wall-clock use inside the simulated fleet layer.

    The global ``wallclock`` rule deliberately permits
    ``time.monotonic``/``time.sleep`` because harness code timing *real*
    work needs them.  ``repro/cluster`` has no real work: every duration
    is simulated microseconds on the event loop, and a single
    ``sleep()`` or ``monotonic()`` there silently breaks both
    determinism and the capture-once/replay-many contract.  This rule
    closes the gap the harness exemption leaves open, for that one
    package.
    """

    name = "cluster-clock"
    severity = "error"
    description = ("the simulated fleet runs on EventLoop time only; "
                   "time.monotonic/sleep/perf_counter have no meaning "
                   "inside repro/cluster")

    def _confined(self, path: str) -> bool:
        return _CLUSTER_DIR in path.split("/")[:-1]

    def check_file(self, ctx) -> Iterable[Finding]:
        if not self._confined(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "time"
                        and func.attr in _CLOCK_FUNCS):
                    yield self.finding(
                        ctx, node,
                        f"time.{func.attr}() inside the cluster layer "
                        "reads (or blocks on) the host clock; the fleet "
                        "is simulated — schedule on the EventLoop and "
                        "read loop.now instead")
            elif (isinstance(node, ast.ImportFrom)
                    and node.module == "time"):
                bad = sorted(alias.name for alias in node.names
                             if alias.name in _CLOCK_FUNCS)
                if bad:
                    yield self.finding(
                        ctx, node,
                        f"importing {', '.join(bad)} from time inside "
                        "the cluster layer pulls the host clock into a "
                        "simulated-time package; schedule on the "
                        "EventLoop and read loop.now instead")


#: Files (relative to the lint root) allowed to reference the static
#: service-cost tables: the two app classes that define them, and the
#: calibration module's explicitly-labeled fallback path.
_COST_ALLOWED = ("apps/kvstore/app.py", "apps/websearch/app.py",
                 "cluster/calibrate.py")


class ServiceCostTableRule(Rule):
    """Static service-cost tables referenced outside their owners.

    ``CLUSTER_SERVICE_COSTS`` is the hand-written fallback the measured
    calibration path replaced; any new reference outside the defining
    app classes and ``cluster/calibrate.py``'s ``static_model`` would
    smuggle literal costs back into the fleet model behind the
    ``--costs`` switch.  Price requests from a ``ServiceCostModel``
    (measured, or ``static_model()`` for the labeled fallback) instead.
    """

    name = "service-costs"
    severity = "error"
    description = ("CLUSTER_SERVICE_COSTS belongs to the app classes "
                   "and calibrate.py's fallback; everything else prices "
                   "ops through a ServiceCostModel")

    def _allowed(self, path: str) -> bool:
        return path.endswith(_COST_ALLOWED)

    def check_file(self, ctx) -> Iterable[Finding]:
        if self._allowed(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Name) \
                    and node.id == "CLUSTER_SERVICE_COSTS":
                referenced = node
            elif isinstance(node, ast.Attribute) \
                    and node.attr == "CLUSTER_SERVICE_COSTS":
                referenced = node
            else:
                continue
            yield self.finding(
                ctx, referenced,
                "CLUSTER_SERVICE_COSTS referenced outside the app "
                "classes and cluster/calibrate.py; static tables are "
                "the labeled --costs=static fallback only — price ops "
                "through a ServiceCostModel "
                "(repro.cluster.calibrate.calibrate or static_model)")


class TraceLayerRule(Rule):
    """Direct trace consumption outside the trace layer.

    ``app.trace(...)``, ``app.trace_segments(...)``, and raw
    ``guard_trace(...)`` wrapping belong to ``repro/trace/`` (capture
    and live sources) and the ``core/runner.py`` facade.  Everything
    else must go through the pipeline — ``materialize``/``replay`` for
    trace-driven runs, ``LiveSource``/``guarded_trace`` for
    generation-entangled ones.
    """

    name = "trace-layer"
    severity = "error"
    description = ("direct app.trace()/guard_trace() consumption "
                   "bypasses the capture/replay pipeline; route it "
                   "through repro/trace or the runner facade")

    def _allowed(self, path: str) -> bool:
        if path.endswith(_ALLOWED_FILES):
            return True
        return _ALLOWED_DIR in path.split("/")[:-1]

    def check_file(self, ctx) -> Iterable[Finding]:
        if self._allowed(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            called = _called_name(node.func)
            if called == "guard_trace":
                yield self.finding(
                    ctx, node,
                    "raw guard_trace() wrapping outside the trace "
                    "layer; use repro.trace.live.live_stream (or the "
                    "runner's guarded_trace facade) so capture and "
                    "live generation share one watchdog path")
            elif (called in _TRACE_METHODS
                    and isinstance(node.func, ast.Attribute)):
                yield self.finding(
                    ctx, node,
                    f".{called}() drained outside the trace layer "
                    "bypasses capture, the runaway-trace watchdog, and "
                    "the pipeline taps; go through "
                    "repro.trace.pipeline.materialize or a "
                    "repro.trace.live source")

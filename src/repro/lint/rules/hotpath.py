"""Hot-path rules.

The columnar replay engine exists because per-uop ``MicroOp``
construction dominated the Figure 4 wall clock: one object allocation
plus nine attribute stores per dynamic micro-op, at ~10⁵ ops per sweep
cell.  The batched front-end (:mod:`repro.trace.columns`) and the
columnar loop (:mod:`repro.uarch.fastpath`) removed that cost — and
this rule keeps it removed, by confining ``MicroOp(...)`` construction
to the few modules whose *job* is producing decoded micro-ops.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.rules import Rule

#: Files (relative to the lint root) allowed to construct MicroOp
#: instances: the definition module, the codec's decode walk, live
#: generation in the machine layer, and the synthetic polluter stream.
#: Everything else — in particular ``uarch/`` timing code and the trace
#: replay path — must consume encoded columns positionally.
_ALLOWED_FILES = (
    "uarch/uop.py",
    "trace/codec.py",
    "machine/runtime.py",
    "core/polluter.py",
)


class MicroOpConstructionRule(Rule):
    """Per-uop ``MicroOp`` construction outside the sanctioned modules.

    A ``MicroOp(...)`` call creeping into the replay or timing layers
    reintroduces exactly the per-uop allocation the columnar engine was
    built to eliminate — and it does so silently, because the general
    loop still accepts decoded streams.  Decode belongs to
    ``trace/codec.py``; generation belongs to ``machine/runtime.py``
    and ``core/polluter.py``; the hot path reads
    :class:`~repro.trace.columns.ColumnBatch` lists.
    """

    name = "hot-path"
    severity = "error"
    description = ("MicroOp construction outside the sanctioned decode/"
                   "generation modules reintroduces per-uop allocation "
                   "on the replay hot path; consume ColumnBatch columns "
                   "instead")

    def _allowed(self, path: str) -> bool:
        return path.endswith(_ALLOWED_FILES)

    def check_file(self, ctx) -> Iterable[Finding]:
        if self._allowed(ctx.path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name == "MicroOp":
                yield self.finding(
                    ctx, node,
                    "MicroOp() constructed outside the sanctioned "
                    "decode/generation modules; the replay hot path "
                    "consumes encoded columns (repro.trace.columns."
                    "ColumnBatch) — decode belongs in trace/codec.py, "
                    "generation in machine/runtime.py")

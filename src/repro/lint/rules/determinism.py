"""Determinism rules.

Everything here guards one property: two interpreters — different
PYTHONHASHSEED, different machine, different day — given the same
config fingerprint must produce byte-identical results.  The sweep
cache and the paper's tables both depend on it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.rules import Rule


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_int_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.USub, ast.UAdd)):
        node = node.operand
    return (isinstance(node, ast.Constant)
            and type(node.value) is int)


class BuiltinHashRule(Rule):
    """Builtin ``hash()`` outside ``machine/hashing.py``.

    CPython salts str/bytes hashing per process; any simulated address,
    bucket, or partition derived from it diverges across sweep workers.
    Only the int fast path is unsalted, so a literal-int argument is
    allowed; everything else must go through ``stable_hash``.
    """

    name = "builtin-hash"
    severity = "error"
    description = ("builtin hash() is salted per process; use "
                   "machine.hashing.stable_hash")

    def check_file(self, ctx) -> Iterable[Finding]:
        if ctx.path.endswith("hashing.py"):
            return
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "hash"):
                if (len(node.args) == 1 and not node.keywords
                        and _is_int_literal(node.args[0])):
                    continue
                yield self.finding(
                    ctx, node,
                    "builtin hash() is salted per process "
                    "(PYTHONHASHSEED); derive simulated addresses and "
                    "buckets from machine.hashing.stable_hash instead")


#: Module-level ``random`` functions that share one hidden global RNG.
_RANDOM_FUNCS = frozenset({
    "betavariate", "binomialvariate", "choice", "choices", "expovariate",
    "gammavariate", "gauss", "getrandbits", "getstate", "lognormvariate",
    "normalvariate", "paretovariate", "randbytes", "randint", "random",
    "randrange", "sample", "seed", "setstate", "shuffle", "triangular",
    "uniform", "vonmisesvariate", "weibullvariate",
})


class UnseededRandomRule(Rule):
    """Module-level ``random.*`` calls instead of seeded instances.

    The module-level functions draw from one process-global generator:
    any other component touching it (or a different import order)
    perturbs every draw after it.  Simulation code must own a
    ``random.Random(seed)`` instance derived from the run config.
    """

    name = "unseeded-random"
    severity = "error"
    description = ("module-level random.* uses the shared global RNG; "
                   "use a seeded random.Random instance")

    def check_file(self, ctx) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "random"
                    and node.func.attr in _RANDOM_FUNCS):
                yield self.finding(
                    ctx, node,
                    f"random.{node.func.attr}() draws from the shared "
                    "process-global RNG; use a random.Random(seed) "
                    "instance owned by the component")
            elif (isinstance(node, ast.ImportFrom)
                    and node.module == "random"):
                bad = sorted(alias.name for alias in node.names
                             if alias.name in _RANDOM_FUNCS)
                if bad:
                    yield self.finding(
                        ctx, node,
                        f"importing {', '.join(bad)} from random binds "
                        "the shared global RNG; import random.Random "
                        "and seed an instance")


#: Dotted call suffixes that read wall-clock time or OS entropy.
_WALLCLOCK_SUFFIXES = (
    "time.time", "time.time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
)
_WALLCLOCK_FROM_IMPORTS = {
    "time": frozenset({"time", "time_ns"}),
    "os": frozenset({"urandom"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
}


class WallClockRule(Rule):
    """Wall-clock time or OS entropy reaching simulated behaviour.

    ``time.time()``, ``datetime.now()``, ``os.urandom()`` and friends
    differ on every run by construction.  Simulated time is the cycle
    counter; randomness comes from the seeded run config.  (Harness
    code timing *real* work — deadlines, backoff sleeps — should use
    ``time.monotonic``/``time.sleep``, which this rule does not flag.)
    """

    name = "wallclock"
    severity = "error"
    description = ("wall-clock time / OS entropy is nondeterministic by "
                   "construction; use simulated cycles or the run seed")

    def check_file(self, ctx) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                if dotted.startswith("secrets."):
                    yield self.finding(
                        ctx, node,
                        f"{dotted}() reads OS entropy; use the seeded "
                        "run config instead")
                    continue
                for suffix in _WALLCLOCK_SUFFIXES:
                    if dotted == suffix or dotted.endswith("." + suffix):
                        yield self.finding(
                            ctx, node,
                            f"{dotted}() is wall-clock/OS entropy and "
                            "differs on every run; simulated results "
                            "must derive from cycles or the run seed")
                        break
            elif isinstance(node, ast.ImportFrom):
                banned = _WALLCLOCK_FROM_IMPORTS.get(node.module or "")
                if banned:
                    bad = sorted(alias.name for alias in node.names
                                 if alias.name in banned)
                    if bad:
                        yield self.finding(
                            ctx, node,
                            f"importing {', '.join(bad)} from "
                            f"{node.module} pulls wall-clock/entropy "
                            "into scope; call through the module so "
                            "usage stays visible — or avoid it in sim "
                            "paths entirely")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


class OrderDependenceRule(Rule):
    """Iteration order of sets leaking into results.

    Set iteration order follows element hashes — salted for strings —
    so any loop over a set that feeds a result, a trace, or serialized
    output varies per process.  Sort first (``sorted(s)``) or keep a
    dict, whose insertion order is deterministic.  ``dict.popitem()``
    is flagged too: which item pops depends on insertion history that
    callers rarely control (``OrderedDict.popitem(last=...)`` with an
    explicit end is fine).
    """

    name = "order-dependence"
    severity = "error"
    description = ("set iteration order is hash-dependent; sort before "
                   "order can reach results or serialized output")

    _CONSUMERS = frozenset({"list", "tuple", "enumerate"})

    def check_file(self, ctx) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield self._order_finding(ctx, node.iter, "for loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_set_expr(generator.iter):
                        yield self._order_finding(ctx, generator.iter,
                                                  "comprehension")
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Name)
                        and func.id in self._CONSUMERS
                        and node.args and _is_set_expr(node.args[0])):
                    yield self._order_finding(ctx, node,
                                              f"{func.id}() call")
                elif (isinstance(func, ast.Attribute)
                        and func.attr == "join"
                        and node.args and _is_set_expr(node.args[0])):
                    yield self._order_finding(ctx, node, "join() call")
                elif (isinstance(func, ast.Attribute)
                        and func.attr == "popitem"
                        and not node.args and not node.keywords):
                    yield self.finding(
                        ctx, node,
                        "popitem() removes an order-dependent item; "
                        "pop an explicit key, or pass last=True/False "
                        "on an OrderedDict")

    def _order_finding(self, ctx, node, where: str) -> Finding:
        return self.finding(
            ctx, node,
            f"iterating a set in a {where} follows hash order, which "
            "is salted per process for strings; wrap it in sorted() "
            "before the order can reach results or serialized output")


#: Argument node types whose repr is not a stable scalar.
_UNSTABLE_ARG_TYPES = {
    ast.List: "a list", ast.Dict: "a dict", ast.Set: "a set",
    ast.ListComp: "a list comprehension", ast.SetComp:
    "a set comprehension", ast.DictComp: "a dict comprehension",
    ast.GeneratorExp: "a generator", ast.Lambda: "a lambda",
}


class StableHashArgsRule(Rule):
    """``stable_hash`` fed arguments it is defined to reject.

    ``stable_hash`` folds each part's ``repr`` — that is only stable
    for int/str/bytes/float/bool/None and tuples thereof (the types the
    runtime check in ``machine/hashing.py`` accepts).  A default
    ``object.__repr__`` embeds a memory address; generators and lambdas
    do too, and set reprs are hash-ordered.  The runtime raises on the
    obvious cases; this rule catches them before they run.
    """

    name = "stable-hash-args"
    severity = "error"
    description = ("stable_hash arguments must be scalars or tuples of "
                   "scalars — container/object reprs are not stable")

    def check_file(self, ctx) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if name != "stable_hash":
                continue
            for arg in node.args:
                label = _UNSTABLE_ARG_TYPES.get(type(arg))
                if (label is None and isinstance(arg, ast.Call)
                        and isinstance(arg.func, ast.Name)
                        and arg.func.id == "object"):
                    label = "a plain object()"
                if label is not None:
                    yield self.finding(
                        ctx, arg,
                        f"stable_hash is fed {label}: its repr is not "
                        "a stable scalar (stable_hash accepts "
                        "int/str/bytes/float/bool/None and tuples "
                        "thereof); hash a sorted tuple of scalars "
                        "instead")

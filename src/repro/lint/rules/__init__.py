"""Rule base classes and the registry.

A rule is a class with a unique ``name``, a ``severity``, a one-line
``description``, and either :meth:`Rule.check_file` (runs once per
file) or, for :class:`ProjectRule` subclasses,
:meth:`ProjectRule.check_project` (runs once with every parsed file, for
cross-file checks like the counter schema).  Register new rules by
appending the class to ``ALL_RULES`` — ``docs/lint.md`` walks through
adding one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Type

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import FileContext


class Rule:
    """Base class: one diagnostic family, checked file by file."""

    name: str = ""
    severity: str = "error"
    description: str = ""

    def check_file(self, ctx: "FileContext") -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node, message: str) -> Finding:
        return Finding(self.name, ctx.path, getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0) + 1, self.severity,
                       message)


class ProjectRule(Rule):
    """A rule that needs every file at once (cross-file invariants)."""

    def check_file(self, ctx: "FileContext") -> Iterable[Finding]:
        return ()

    def check_project(self,
                      contexts: "List[FileContext]") -> Iterable[Finding]:
        raise NotImplementedError


from repro.lint.rules.counters import CounterSchemaRule  # noqa: E402
from repro.lint.rules.determinism import (  # noqa: E402
    BuiltinHashRule,
    OrderDependenceRule,
    StableHashArgsRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.lint.rules.hotpath import (  # noqa: E402
    MicroOpConstructionRule,
)
from repro.lint.rules.layering import (  # noqa: E402
    ClusterClockRule,
    ServiceCostTableRule,
    TraceLayerRule,
)
from repro.lint.rules.robustness import (  # noqa: E402
    BlindExceptRule,
    FloatEqualityRule,
    MutableDefaultRule,
)
from repro.lint.program import (  # noqa: E402
    FingerprintPurityRule,
    ImportLayeringRule,
    TaintFlowRule,
)

#: Every registered rule, in reporting-priority order.
ALL_RULES: List[Type[Rule]] = [
    BuiltinHashRule,
    UnseededRandomRule,
    WallClockRule,
    OrderDependenceRule,
    StableHashArgsRule,
    TraceLayerRule,
    ClusterClockRule,
    ServiceCostTableRule,
    MicroOpConstructionRule,
    BlindExceptRule,
    MutableDefaultRule,
    FloatEqualityRule,
    CounterSchemaRule,
    TaintFlowRule,
    FingerprintPurityRule,
    ImportLayeringRule,
]

#: Pseudo-rules the engine itself emits; valid in suppressions/baseline.
META_RULES = ("bad-suppression", "parse-error")


def rule_names() -> frozenset[str]:
    """All valid rule names, including meta rules, for suppressions."""
    return frozenset(cls.name for cls in ALL_RULES) | frozenset(META_RULES)

"""Robustness rules.

These catch the failure-masking idioms that turned real bugs into
silent data corruption during the fault-injection and supervision work:
swallowed exceptions in worker/store paths, mutable defaults shared
across calls, and exact float comparison in validation code.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.findings import Finding
from repro.lint.rules import Rule

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _is_broad(node: ast.expr | None) -> bool:
    if node is None:
        return True
    if isinstance(node, ast.Name):
        return node.id in _BROAD_EXCEPTIONS
    if isinstance(node, ast.Tuple):
        return any(_is_broad(element) for element in node.elts)
    return False


def _swallows(body: list[ast.stmt]) -> bool:
    """True if the handler body does nothing with the failure."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)):
            continue  # docstring / ellipsis
        return False
    return True


class BlindExceptRule(Rule):
    """Bare ``except:`` anywhere; broad handlers that swallow.

    A bare ``except:`` catches ``KeyboardInterrupt`` and ``SystemExit``
    — a supervised worker becomes unkillable and a crash-safe store
    write can half-apply.  ``except Exception: pass`` is the quieter
    version: the failure is simply erased.  Catch the narrowest type
    that can actually occur, and always *do* something — re-raise,
    record, or substitute an explicit sentinel.
    """

    name = "blind-except"
    severity = "error"
    description = ("bare/blind except hides failures; catch narrow "
                   "types and handle or re-raise")

    def check_file(self, ctx) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare except catches KeyboardInterrupt/SystemExit "
                    "— workers become unkillable; name the exception "
                    "types this code can actually recover from")
            elif _is_broad(node.type) and _swallows(node.body):
                yield self.finding(
                    ctx, node,
                    "broad except that swallows the failure; handle "
                    "it (log, retry, sentinel) or catch a narrower "
                    "type")


_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque",
    "Counter", "OrderedDict",
})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS)


class MutableDefaultRule(Rule):
    """Mutable default argument values.

    Defaults evaluate once at ``def`` time, so a ``[]``/``{}`` default
    is shared by every call — state leaks across sweep cells and across
    the tests that were supposed to catch it.  Default to ``None`` and
    allocate inside the function.
    """

    name = "mutable-default"
    severity = "error"
    description = ("mutable default arguments are shared across calls; "
                   "default to None and allocate inside")

    def check_file(self, ctx) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        ctx, default,
                        "mutable default evaluates once at def time "
                        "and is shared by every call; default to None "
                        "and allocate inside the function")


class FloatEqualityRule(Rule):
    """Exact equality against float literals.

    ``x == 0.95`` silently depends on accumulation order; validation
    code comparing derived metrics this way passes or fails by luck.
    Compare with a tolerance (``math.isclose``) or restate the check
    over the integer counters the float was derived from.
    """

    name = "float-eq"
    severity = "warning"
    description = ("exact float equality is order-of-accumulation "
                   "dependent; use a tolerance or integer counters")

    def check_file(self, ctx) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq))
                       for op in node.ops):
                continue
            for side in [node.left, *node.comparators]:
                if (isinstance(side, ast.Constant)
                        and type(side.value) is float):
                    yield self.finding(
                        ctx, node,
                        f"exact comparison against float literal "
                        f"{side.value!r}; use math.isclose or compare "
                        "the integer counters it derives from")
                    break

"""The committed baseline of grandfathered findings.

A baseline entry acknowledges a pre-existing finding without fixing it
yet: the linter stays green while the entry's file keeps the finding,
and goes red the moment a *new* finding appears anywhere.  Every entry
must carry a ``reason`` — an entry without one is reported as an error,
exactly like a reasonless inline suppression.

Entries match on ``(rule, path, message)`` — never on line numbers, so
unrelated edits to a grandfathered file do not churn the file.  An
entry whose finding has been fixed is *stale* and reported as an error
too: baselines only ever shrink.

The file itself is JSON (``lint-baseline.json`` at the repository
root)::

    {
      "version": 1,
      "entries": [
        {"rule": "...", "path": "...", "message": "...", "reason": "..."}
      ]
    }
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from repro.lint.findings import Finding

FORMAT_VERSION = 1

_REQUIRED_KEYS = ("rule", "path", "message", "reason")


class BaselineError(ValueError):
    """The baseline file is unreadable or structurally invalid."""


@dataclass
class Baseline:
    """Grandfathered findings keyed by ``(rule, path, message)``."""

    entries: dict[tuple[str, str, str], str] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = pathlib.Path(path)
        if not path.exists():
            return cls()
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"unreadable baseline {path}: {exc}") from exc
        if not isinstance(document, dict):
            raise BaselineError(f"baseline {path} is not a JSON object")
        version = document.get("version")
        if version != FORMAT_VERSION:
            raise BaselineError(
                f"baseline {path} has version {version!r}; "
                f"this linter reads version {FORMAT_VERSION}")
        entries: dict[tuple[str, str, str], str] = {}
        for index, entry in enumerate(document.get("entries", [])):
            if (not isinstance(entry, dict)
                    or any(not isinstance(entry.get(key), str)
                           for key in _REQUIRED_KEYS)):
                raise BaselineError(
                    f"baseline {path} entry {index} must be an object "
                    f"with string fields {', '.join(_REQUIRED_KEYS)}")
            entries[(entry["rule"], entry["path"], entry["message"])] = (
                entry["reason"])
        return cls(entries)

    def partition(self, findings: list[Finding],
                  ) -> tuple[list[Finding], list[Finding]]:
        """Split findings into ``(new, grandfathered)``."""
        new: list[Finding] = []
        old: list[Finding] = []
        for finding in findings:
            (old if finding.baseline_key() in self.entries
             else new).append(finding)
        return new, old

    def audit(self, findings: list[Finding]) -> list[Finding]:
        """Problems with the baseline itself, as findings.

        * an entry with an empty reason (grandfathering needs a *why*);
        * a stale entry whose finding no longer occurs.
        """
        problems: list[Finding] = []
        live = {finding.baseline_key() for finding in findings}
        for key, reason in sorted(self.entries.items()):
            rule, path, message = key
            if not reason.strip():
                problems.append(Finding(
                    "bad-suppression", path, 0, 0, "error",
                    f"baseline entry for [{rule}] {message!r} has no "
                    "reason"))
            if key not in live:
                problems.append(Finding(
                    "bad-suppression", path, 0, 0, "error",
                    f"stale baseline entry: [{rule}] {message!r} no "
                    "longer occurs — delete it (baselines only shrink)"))
        return problems

    @staticmethod
    def write(path: str | pathlib.Path, findings: list[Finding],
              reason: str = "grandfathered at baseline creation") -> int:
        """Record ``findings`` as the new baseline; returns entry count.

        Duplicate ``(rule, path, message)`` keys collapse into one
        entry — they are indistinguishable to matching anyway.
        """
        seen: dict[tuple[str, str, str], dict] = {}
        for finding in sorted(findings, key=Finding.sort_key):
            key = finding.baseline_key()
            if key not in seen:
                seen[key] = {"rule": finding.rule, "path": finding.path,
                             "message": finding.message, "reason": reason}
        document = {"version": FORMAT_VERSION,
                    "entries": list(seen.values())}
        pathlib.Path(path).write_text(json.dumps(document, indent=1,
                                                 sort_keys=True) + "\n")
        return len(seen)

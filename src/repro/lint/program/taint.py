"""``taint-flow`` — interprocedural determinism taint.

A *source* is a call or expression whose value differs between runs
(wall clock, global RNG, environment, salted ``hash``, set order).
A *sink* is a write that the replay discipline requires to be
byte-identical (counter stores, fingerprint inputs, store documents,
the cluster sim clock, trace containers).  The per-file rules already
flag a source spelled inside the sink's own function; this rule covers
the laundered case — a sink function that *calls*, through any number
of edges, a function that reads a source:

    def wrapped_now():            # helper module, lints clean
        return time.time()

    def _accumulate(total, part): # hot path, lints clean per file
        total.cycles += weight()  # weight() -> wrapped_now() -> boom

Propagation is upward-only (callee to caller through return edges) and
stops at *sanitizers*: every function in a ``hashing.py`` module is
blessed, and any wrapper can be blessed explicitly with
``# repro-lint: sanitizer -- <why>`` on its ``def`` header.  Findings
carry the full witness path so the report reads as the data flows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List

from repro.lint.findings import Finding
from repro.lint.program.model import (ProgramModel, TaintSource,
                                      build_model)
from repro.lint.rules import ProjectRule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import FileContext

#: Functions folded into replay fingerprints are implicit sinks even
#: without a structural write: a tainted value in a fingerprint
#: invalidates every cache key derived from it.
_FINGERPRINT_NAMES = frozenset(
    {"config_fingerprint", "replay_path_for", "canonical"})


class _Taint:
    """Memoized downward taint query over the call graph."""

    def __init__(self, model: ProgramModel) -> None:
        self.model = model
        #: qualname -> (source, path of qualnames ending at the source
        #: function), or None for provably-untainted functions.
        self.memo: dict[str, tuple[TaintSource, List[str]] | None] = {}
        self._stack: set[str] = set()

    def of(self, qualname: str) -> tuple[TaintSource, List[str]] | None:
        taint, _ = self._visit(qualname)
        return taint

    def _visit(self, qualname: str
               ) -> tuple[tuple[TaintSource, List[str]] | None, bool]:
        """Returns ``(taint, blocked)``; a result computed while a call
        cycle was cut short (*blocked*) is not safe to memoize as
        clean, since the skipped edge may carry the only taint."""
        if qualname in self.memo:
            return self.memo[qualname], False
        info = self.model.functions.get(qualname)
        if info is None or info.sanitizer:
            self.memo[qualname] = None
            return None, False
        if info.sources:
            taint = (info.sources[0], [qualname])
            self.memo[qualname] = taint
            return taint, False
        if qualname in self._stack:
            return None, True
        self._stack.add(qualname)
        blocked = False
        taint = None
        try:
            for site in info.calls:
                sub, sub_blocked = self._visit(site.callee)
                blocked = blocked or sub_blocked
                if sub is not None:
                    taint = (sub[0], [qualname] + sub[1])
                    break
        finally:
            self._stack.discard(qualname)
        if taint is not None or not blocked:
            self.memo[qualname] = taint
        return taint, blocked


def _witness(model: ProgramModel, path: List[str],
             source: TaintSource) -> str:
    steps = [model.functions[q].display for q in path]
    return " -> ".join(steps + [source.display])


class TaintFlowRule(ProjectRule):
    """Nondeterminism reaching a deterministic-result sink via calls."""

    name = "taint-flow"
    severity = "error"
    description = ("nondeterministic source reaches a counter/"
                   "fingerprint/store/clock/trace sink through calls")

    def check_project(self, contexts: "List[FileContext]",
                      ) -> Iterable[Finding]:
        model = build_model(contexts)
        yield from model.annotation_findings
        taint = _Taint(model)
        for info in model.functions.values():
            if info.sanitizer:
                continue
            sinks = list(info.sinks)
            if not sinks and info.name in _FINGERPRINT_NAMES:
                sinks = [None]  # implicit fingerprint-input sink
            if not sinks:
                continue
            reported: set[tuple[str, str]] = set()
            for site in info.calls:
                found = taint.of(site.callee)
                if found is None:
                    continue
                source, path = found
                key = (site.callee, source.kind)
                if key in reported:
                    continue
                reported.add(key)
                sink = sinks[0]
                what = (sink.display if sink is not None else
                        f"fingerprint input of {info.display}")
                more = (f" (and {len(sinks) - 1} more sink(s) in "
                        f"{info.display})" if len(sinks) > 1 else "")
                witness = _witness(model, [info.qualname] + path, source)
                yield Finding(
                    self.name, info.ctx.path, site.line, 1,
                    self.severity,
                    f"{what}{more} is fed by nondeterministic "
                    f"{source.kind}: {witness}; route the value through "
                    "a blessed sanitizer (stable_hash, a seeded "
                    "random.Random) or annotate the trusted wrapper "
                    "`# repro-lint: sanitizer -- <why>`")

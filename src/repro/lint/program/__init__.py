"""Whole-program analysis: the interprocedural layer of repro-lint.

The per-file rules in :mod:`repro.lint.rules` catch a nondeterminism
*source* at its call site.  What they structurally cannot see is a
source laundered through a helper: a wrapper around ``time.time()``
called from a counter-incrementing hot path lints clean file by file,
yet silently invalidates every cached result in the store.  This
package closes that gap with one shared :class:`~repro.lint.program.model.ProgramModel`
(project-wide symbol table + call graph, built from the engine's
already-parsed ``FileContext`` list) and three rules on top of it:

* ``taint-flow`` (:mod:`.taint`) — propagates determinism taint from
  sources (wall clock, global RNG, ``os.environ``, builtin ``hash``,
  set iteration order) through call/return edges into sinks (counter
  stores, fingerprint inputs, store documents, the cluster sim clock,
  trace containers), stopping at blessed sanitizers.
* ``fingerprint-purity`` (:mod:`.purity`) — verifies the functions
  folded into :func:`~repro.core.sweep.config_fingerprint` stay free
  of global mutation, I/O, and taint, and that ``*_SCHEMA`` constants
  stay literal.
* ``import-layering`` (:mod:`.layers`) — a declared, table-driven
  import DAG between the top-level packages (``uarch`` never imports
  ``cluster``, ``lint`` imports nothing, ...).

All three activate structurally — on whatever tree the engine parsed —
so the fixture suites exercise them exactly like the live repository.
"""

from __future__ import annotations

from repro.lint.program.layers import ImportLayeringRule
from repro.lint.program.model import ProgramModel
from repro.lint.program.purity import FingerprintPurityRule
from repro.lint.program.taint import TaintFlowRule

__all__ = [
    "ProgramModel",
    "TaintFlowRule",
    "FingerprintPurityRule",
    "ImportLayeringRule",
]

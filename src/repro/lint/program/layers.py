"""``import-layering`` — the declared package dependency table.

The ad-hoc layering rules (``cluster-clock``, ``trace-layer``,
``hot-path``) each police one corner of the architecture.  This rule
states the whole thing in one table: for every top-level package of
the tree, the set of packages it may import.  Packages absent from the
table (and root-level modules like ``tools.py``) are unconstrained, so
small fixture trees activate only the rows they actually contain.

The table encodes the dependency reality of the repository — it is a
declared *ceiling*, not an aspiration.  Notable edges it forbids:

* ``uarch`` never imports ``cluster`` (a core model must not know
  about fleets) nor ``core`` (the harness drives the model, never the
  reverse);
* ``apps`` never imports ``core`` (workload definitions must not
  reach into sweep/cache plumbing — the ``_cache_key`` aliasing bug
  rode in through exactly such a shortcut);
* ``machine`` sits below everything except ``uarch``;
* ``lint`` imports nothing — the linter must be loadable without
  executing any simulator code, or it could not gate that code.

Loosening an edge is a one-line diff to ``LAYERS`` reviewed like any
other API change, with the docs table in ``docs/lint.md`` as the
human-readable mirror.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List

from repro.lint.findings import Finding
from repro.lint.program.model import build_model
from repro.lint.rules import ProjectRule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import FileContext

#: package -> packages it may import (itself always included).
LAYERS: dict[str, frozenset[str]] = {
    "apps": frozenset({"apps", "faults", "load", "machine", "uarch",
                       "trace"}),
    "cluster": frozenset({"cluster", "apps", "core", "faults", "load",
                          "machine", "trace", "uarch"}),
    "core": frozenset({"core", "apps", "cluster", "faults", "load",
                       "machine", "trace", "uarch"}),
    "faults": frozenset({"faults"}),
    "lint": frozenset({"lint"}),
    "load": frozenset({"load", "faults"}),
    "machine": frozenset({"machine", "uarch"}),
    "trace": frozenset({"trace", "apps", "core", "faults", "uarch"}),
    "uarch": frozenset({"uarch", "trace"}),
}


class ImportLayeringRule(ProjectRule):
    """Imports must follow the declared package layering table."""

    name = "import-layering"
    severity = "error"
    description = ("import crosses a package boundary the layering "
                   "table does not allow")

    def check_project(self, contexts: "List[FileContext]",
                      ) -> Iterable[Finding]:
        model = build_model(contexts)
        for importer, target, lineno, spelled in model.import_edges:
            src_pkg = model.package_of(importer)
            dst_pkg = model.package_of(target)
            allowed = LAYERS.get(src_pkg)
            if allowed is None or dst_pkg in allowed or not dst_pkg:
                continue
            ctx = model.modules[importer]
            yield Finding(
                self.name, ctx.path, lineno, 1, self.severity,
                f"package `{src_pkg}` must not import `{dst_pkg}` "
                f"(import of {spelled}); `{src_pkg}` may only depend "
                f"on: {', '.join(sorted(allowed))} — see the layering "
                "table in docs/lint.md before loosening LAYERS")

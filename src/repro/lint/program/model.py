"""The shared whole-program model: symbols, imports, calls, effects.

One :class:`ProgramModel` is built per engine run (memoized on the
context list, since every project rule receives the same list object)
and answers the questions the interprocedural rules share:

* which functions exist, under which dotted qualified name;
* which module a dotted import resolves to *inside the linted tree*;
* which known function a call expression resolves to (module-level
  functions, ``self.``/``cls.`` methods, imported symbols, aliased
  modules, class instantiations);
* which determinism *sources*, *sinks*, and *effects* each function
  body contains, and which functions are blessed *sanitizers*.

Resolution is deliberately conservative: a call that cannot be
resolved statically (a callback variable, duck-typed method, external
library) simply contributes no edge.  Taint then under-approximates —
it misses exotic flows but never invents one, which is the right
trade-off for a hard CI gate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Sequence

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import FileContext

#: ``time`` attributes that read a clock.  Broader than the file-local
#: ``wallclock`` rule on purpose: ``monotonic``/``perf_counter`` are
#: fine for harness deadlines, but a *sink* they reach is still
#: nondeterministic — the harness exemption is exactly the gap this
#: pass closes.
_CLOCK_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
})

#: Dotted call names (exact or ``.``-suffix) that are taint sources.
_SOURCE_SUFFIXES = {
    "datetime.now": "wallclock", "datetime.utcnow": "wallclock",
    "datetime.today": "wallclock", "date.today": "wallclock",
    "os.urandom": "entropy", "uuid.uuid1": "entropy",
    "uuid.uuid4": "entropy", "os.getenv": "os-environ",
}

#: Module-level ``random`` functions (mirrors the file-local rule).
_RANDOM_FUNCS = frozenset({
    "betavariate", "binomialvariate", "choice", "choices", "expovariate",
    "gammavariate", "gauss", "getrandbits", "getstate", "lognormvariate",
    "normalvariate", "paretovariate", "randbytes", "randint", "random",
    "randrange", "sample", "seed", "setstate", "shuffle", "triangular",
    "uniform", "vonmisesvariate", "weibullvariate",
})

#: Call suffixes that constitute I/O for the purity verifier.
_IO_SUFFIXES = (
    ".write_text", ".write_bytes", ".read_text", ".read_bytes",
    ".mkdir", ".unlink", ".rename", ".touch", ".rmdir", ".open",
)
_IO_NAMES = frozenset({"open", "input", "print"})
_IO_PREFIXES = ("os.", "sys.", "subprocess.", "shutil.", "socket.")
#: Exact dotted names (so ``json.dumps`` — pure — is not swept up).
_IO_DOTTED = frozenset({"json.dump", "json.load",
                        "pickle.dump", "pickle.load"})

#: Function-level annotations:
#: ``# repro-lint: sanitizer -- <why>`` and ``# repro-lint: pure -- <why>``
#: on the def's header (decorator lines included).
_ANNOTATION = re.compile(
    r"#\s*repro-lint:\s*(sanitizer|pure)\b(?:\s*--\s*(.*))?$")


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_int_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and type(node.value) is int


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


@dataclass(frozen=True)
class TaintSource:
    """One nondeterminism source observed directly in a function."""

    kind: str      # wallclock | entropy | os-environ | unseeded-random
    #                | builtin-hash | set-order
    display: str   # e.g. "time.perf_counter()"
    line: int


@dataclass(frozen=True)
class Sink:
    """One deterministic-result write observed in a function."""

    kind: str      # counter-store | fingerprint | store-document
    #                | sim-clock | trace-container
    display: str   # e.g. "counter store total.cycles"
    line: int


@dataclass(frozen=True)
class Effect:
    """One impurity (for the purity verifier; taint is tracked apart)."""

    kind: str      # global-mutation | io | global-decl
    display: str
    line: int


@dataclass(frozen=True)
class CallSite:
    callee: str    # qualified name, e.g. "trace.pipeline:materialize"
    display: str   # source spelling, e.g. "trace_pipeline.materialize"
    line: int


@dataclass
class FunctionInfo:
    """Everything the interprocedural rules know about one function."""

    qualname: str                 # "module:Class.method" / "module:<module>"
    module: str
    name: str
    ctx: "FileContext"
    lineno: int
    calls: List[CallSite] = field(default_factory=list)
    sources: List[TaintSource] = field(default_factory=list)
    sinks: List[Sink] = field(default_factory=list)
    effects: List[Effect] = field(default_factory=list)
    sanitizer: bool = False
    pure_annotated: bool = False

    @property
    def display(self) -> str:
        """Human form for witness paths: ``module.Class.method``."""
        local = self.qualname.split(":", 1)[1]
        if local == "<module>":
            return f"{self.module or '<root>'} (module level)"
        return f"{self.module}.{local}" if self.module else local


@dataclass(frozen=True)
class _Binding:
    """What one imported name refers to."""

    kind: str               # "module" | "symbol" | "ext-module" | "ext-symbol"
    module: str             # tree module name, or external dotted name
    attr: str = ""


class ProgramModel:
    """Project-wide symbol table and call graph over parsed contexts."""

    def __init__(self, contexts: Sequence["FileContext"],
                 root_name: str) -> None:
        self.root_name = root_name
        self.contexts = list(contexts)
        #: module name ("core.sweep", "" for the root package) -> ctx
        self.modules: dict[str, "FileContext"] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: (importer module, imported tree module, lineno, spelled name)
        self.import_edges: list[tuple[str, str, int, str]] = []
        #: bad/reasonless annotations, reported through the taint rule.
        self.annotation_findings: list[Finding] = []
        self._bindings: dict[str, dict[str, _Binding]] = {}
        self._classes: dict[str, dict[str, set[str]]] = {}
        self._callers: dict[str, list[tuple[str, CallSite]]] | None = None
        for ctx in self.contexts:
            self.modules[self._module_name(ctx.path)] = ctx
        for ctx in self.contexts:
            self._collect_module(ctx)
        for info in self.functions.values():
            self._resolve_calls(info)

    # -- construction --------------------------------------------------
    @staticmethod
    def _module_name(path: str) -> str:
        name = path[:-3] if path.endswith(".py") else path
        name = name.replace("/", ".")
        if name.endswith(".__init__"):
            name = name[:-len(".__init__")]
        elif name == "__init__":
            name = ""
        return name

    def package_of(self, module: str) -> str:
        """Top-level package of a module ("" for root-level files)."""
        ctx = self.modules.get(module)
        path = ctx.path if ctx is not None else module.replace(".", "/")
        return path.split("/")[0] if "/" in path else ""

    def resolve_module(self, dotted: str, importer: str = "",
                       level: int = 0) -> str | None:
        """Map a (possibly package-qualified) import to a tree module."""
        if level:  # relative import: anchor at the importer's package
            parts = importer.split(".") if importer else []
            if self.modules.get(importer) is not None and \
                    not self.modules[importer].path.endswith("__init__.py"):
                parts = parts[:-1]
            parts = parts[:len(parts) - (level - 1)] if level > 1 else parts
            dotted = ".".join(parts + ([dotted] if dotted else []))
        candidates = [dotted]
        if dotted == self.root_name:
            candidates.append("")
        if dotted.startswith(self.root_name + "."):
            candidates.append(dotted[len(self.root_name) + 1:])
        elif "." in dotted:  # fixture trees under an arbitrary dir name
            candidates.append(dotted.split(".", 1)[1])
        for cand in candidates:
            if cand in self.modules:
                return cand
        return None

    def _collect_module(self, ctx: "FileContext") -> None:
        module = self._module_name(ctx.path)
        bindings: dict[str, _Binding] = {}
        classes: dict[str, set[str]] = {}
        self._bindings[module] = bindings
        self._classes[module] = classes

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    resolved = self.resolve_module(alias.name)
                    if resolved is not None:
                        bindings[bound] = _Binding("module", resolved)
                        self.import_edges.append(
                            (module, resolved, node.lineno, alias.name))
                    else:
                        bindings[bound] = _Binding(
                            "ext-module", alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                base = self.resolve_module(node.module or "", module,
                                           node.level)
                if base is not None:
                    self.import_edges.append(
                        (module, base, node.lineno,
                         node.module or "." * node.level))
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if base is not None:
                        sub = self.resolve_module(f"{base}.{alias.name}"
                                                  if base else alias.name)
                        if sub is not None:
                            bindings[bound] = _Binding("module", sub)
                            continue
                        bindings[bound] = _Binding("symbol", base,
                                                   alias.name)
                    elif node.module:
                        bindings[bound] = _Binding("ext-symbol",
                                                   node.module, alias.name)
            elif isinstance(node, ast.ClassDef):
                methods = {stmt.name for stmt in node.body
                           if isinstance(stmt, (ast.FunctionDef,
                                                ast.AsyncFunctionDef))}
                classes.setdefault(node.name, set()).update(methods)

        toplevel = FunctionInfo(f"{module}:<module>", module, "<module>",
                                ctx, 1)
        self.functions[toplevel.qualname] = toplevel
        self._walk_body(ctx, module, ctx.tree.body, toplevel, [], [])

    def _walk_body(self, ctx, module, body, owner: FunctionInfo,
                   class_stack: list[str], func_stack: list[str]) -> None:
        """Attribute statements to ``owner``; recurse into nested defs
        and classes as their own functions."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local = ".".join(class_stack + func_stack + [stmt.name])
                info = FunctionInfo(f"{module}:{local}", module, stmt.name,
                                    ctx, stmt.lineno)
                self._annotate(info, stmt)
                self.functions[info.qualname] = info
                self._walk_body(ctx, module, stmt.body, info, class_stack,
                                func_stack + [stmt.name])
                self._scan_statement(owner, stmt, signature_only=True)
            elif isinstance(stmt, ast.ClassDef):
                self._walk_body(ctx, module, stmt.body, owner,
                                class_stack + [stmt.name], func_stack)
            else:
                self._scan_statement(owner, stmt)

    def _annotate(self, info: FunctionInfo, node) -> None:
        """Parse ``# repro-lint: sanitizer/pure`` on the def header."""
        if info.ctx.path.endswith("hashing.py"):
            info.sanitizer = True  # the blessed stable_hash module
        first = min([node.lineno]
                    + [d.lineno for d in node.decorator_list])
        last = node.body[0].lineno - 1 if node.body else node.lineno
        for lineno in range(first, max(last, first) + 1):
            if lineno - 1 >= len(info.ctx.lines):
                break
            match = _ANNOTATION.search(info.ctx.lines[lineno - 1])
            if match is None:
                continue
            directive, reason = match.group(1), (match.group(2) or "").strip()
            if not reason:
                self.annotation_findings.append(Finding(
                    "bad-suppression", info.ctx.path, lineno,
                    match.start() + 1, "error",
                    f"`# repro-lint: {directive}` has no reason — append "
                    "`-- <why this wrapper is trusted>`; reasonless "
                    "annotations rot"))
            if directive == "sanitizer":
                info.sanitizer = True
            else:
                info.pure_annotated = True

    # -- per-statement effect/source/sink extraction --------------------
    def _scan_statement(self, info: FunctionInfo, stmt: ast.stmt,
                        signature_only: bool = False) -> None:
        if signature_only:
            # A nested def's decorators and defaults run in the owner.
            nodes: list[ast.AST] = list(stmt.decorator_list)  # type: ignore[attr-defined]
            args = stmt.args  # type: ignore[attr-defined]
            nodes.extend(args.defaults)
            nodes.extend(d for d in args.kw_defaults if d is not None)
            walk = [n for outer in nodes for n in ast.walk(outer)]
        else:
            walk = self._prune_nested(stmt)
        for node in walk:
            self._scan_node(info, node)

    @staticmethod
    def _prune_nested(stmt: ast.stmt) -> list[ast.AST]:
        """``ast.walk`` that does not descend into nested defs/classes."""
        out: list[ast.AST] = []
        queue: list[ast.AST] = [stmt]
        while queue:
            node = queue.pop()
            out.append(node)
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                queue.append(child)
        return out

    def _scan_node(self, info: FunctionInfo, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._scan_call(info, node)
        elif isinstance(node, ast.Attribute):
            if _dotted(node) == "os.environ":
                info.sources.append(TaintSource(
                    "os-environ", "os.environ", node.lineno))
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            info.effects.append(Effect(
                "global-decl",
                f"declares {', '.join(node.names)} "
                f"{'global' if isinstance(node, ast.Global) else 'nonlocal'}",
                node.lineno))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter):
                info.sources.append(TaintSource(
                    "set-order", "set iteration", node.iter.lineno))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                if _is_set_expr(generator.iter):
                    info.sources.append(TaintSource(
                        "set-order", "set iteration",
                        generator.iter.lineno))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                self._scan_store(info, target, node)

    def _scan_call(self, info: FunctionInfo, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        bindings = self._bindings.get(info.module, {})
        head = dotted.split(".")[0]
        # --- taint sources -------------------------------------------
        if dotted == "hash" and not info.ctx.path.endswith("hashing.py"):
            if not (len(node.args) == 1 and not node.keywords
                    and _is_int_literal(node.args[0])):
                info.sources.append(TaintSource(
                    "builtin-hash", "builtin hash()", node.lineno))
            return
        parts = dotted.split(".")
        if len(parts) == 2 and parts[0] == "time" \
                and parts[1] in _CLOCK_ATTRS:
            info.sources.append(TaintSource(
                "wallclock", f"{dotted}()", node.lineno))
        elif len(parts) == 2 and parts[0] == "random" \
                and parts[1] in _RANDOM_FUNCS \
                and bindings.get("random", _Binding("ext-module",
                                                    "random")).kind \
                == "ext-module":
            info.sources.append(TaintSource(
                "unseeded-random", f"{dotted}()", node.lineno))
        elif dotted.startswith("secrets."):
            info.sources.append(TaintSource(
                "entropy", f"{dotted}()", node.lineno))
        else:
            for suffix, kind in _SOURCE_SUFFIXES.items():
                if dotted == suffix or dotted.endswith("." + suffix):
                    info.sources.append(TaintSource(
                        kind, f"{dotted}()", node.lineno))
                    break
            else:
                binding = bindings.get(head)
                if binding is not None and binding.kind == "ext-symbol" \
                        and len(parts) == 1:
                    origin = f"{binding.module}.{binding.attr}"
                    if binding.module == "time" \
                            and binding.attr in _CLOCK_ATTRS:
                        info.sources.append(TaintSource(
                            "wallclock", f"{origin}()", node.lineno))
                    elif binding.module == "random" \
                            and binding.attr in _RANDOM_FUNCS:
                        info.sources.append(TaintSource(
                            "unseeded-random", f"{origin}()", node.lineno))
                    elif origin in ("os.urandom", "os.getenv"):
                        info.sources.append(TaintSource(
                            "entropy" if binding.attr == "urandom"
                            else "os-environ", f"{origin}()", node.lineno))
        # --- purity: I/O calls ---------------------------------------
        if dotted in _IO_NAMES or dotted in _IO_DOTTED \
                or dotted.endswith(_IO_SUFFIXES) \
                or dotted.startswith(_IO_PREFIXES):
            info.effects.append(Effect("io", f"calls {dotted}()",
                                       node.lineno))
        # --- sinks: store documents / trace containers ---------------
        path = info.ctx.path
        if path.endswith("store.py") and (
                dotted.endswith((".write_text", ".write_bytes"))
                or dotted in ("json.dump",)):
            info.sinks.append(Sink(
                "store-document", f"store document write {dotted}()",
                node.lineno))
        if "trace" in path.split("/")[:-1] and dotted.startswith("self.") \
                and dotted.endswith((".append", ".extend")):
            info.sinks.append(Sink(
                "trace-container", f"trace container write {dotted}()",
                node.lineno))
        # --- the raw call, kept for resolution -----------------------
        info.calls.append(CallSite("", dotted, node.lineno))

    def _scan_store(self, info: FunctionInfo, target: ast.expr,
                    stmt: ast.stmt) -> None:
        if not isinstance(target, ast.Attribute):
            return
        dotted = _dotted(target)
        if dotted is None:
            return
        root = dotted.split(".")[0]
        # cluster sim clock: `loop.now = when` inside cluster/
        if target.attr == "now" \
                and "cluster" in info.ctx.path.split("/")[:-1]:
            info.sinks.append(Sink(
                "sim-clock", f"simulated clock store {dotted}",
                stmt.lineno))
        # counter store: attribute write on a CoreResult-typed name
        if root in self._core_result_vars(info):
            info.sinks.append(Sink(
                "counter-store", f"counter store {dotted}", stmt.lineno))
        # global mutation (purity): writing through a module-level name
        if root != "self" and root in self._module_globals(info.module):
            info.effects.append(Effect(
                "global-mutation", f"mutates module global {dotted}",
                stmt.lineno))

    def _core_result_vars(self, info: FunctionInfo) -> set[str]:
        cached = getattr(info, "_core_vars", None)
        if cached is not None:
            return cached
        names: set[str] = set()
        owner = self._function_node(info)
        nodes = ast.walk(owner) if owner is not None else ()
        for node in nodes:
            if isinstance(node, ast.Assign):
                value = node.value
                if (isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id == "CoreResult"):
                    names.update(t.id for t in node.targets
                                 if isinstance(t, ast.Name))
            elif isinstance(node, ast.arg):
                annotation = node.annotation
                label = None
                if isinstance(annotation, ast.Name):
                    label = annotation.id
                elif isinstance(annotation, ast.Constant) \
                        and isinstance(annotation.value, str):
                    label = annotation.value.strip("\"'")
                if label == "CoreResult":
                    names.add(node.arg)
        info._core_vars = names  # type: ignore[attr-defined]
        return names

    def _function_node(self, info: FunctionInfo):
        """The AST node of a (non-module-level) function, found lazily."""
        if info.name == "<module>":
            return info.ctx.tree
        target = info.qualname.split(":", 1)[1].split(".")[-1]
        for node in ast.walk(info.ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.name == target \
                    and node.lineno == info.lineno:
                return node
        return None

    def _module_globals(self, module: str) -> set[str]:
        ctx = self.modules.get(module)
        cached = self._globals_cache.get(module) \
            if hasattr(self, "_globals_cache") else None
        if cached is not None:
            return cached
        names: set[str] = set()
        if ctx is not None:
            for stmt in ctx.tree.body:
                if isinstance(stmt, ast.Assign):
                    names.update(t.id for t in stmt.targets
                                 if isinstance(t, ast.Name))
                elif isinstance(stmt, ast.AnnAssign) \
                        and isinstance(stmt.target, ast.Name):
                    names.add(stmt.target.id)
        if not hasattr(self, "_globals_cache"):
            self._globals_cache: dict[str, set[str]] = {}
        self._globals_cache[module] = names
        return names

    # -- call resolution -----------------------------------------------
    def _resolve_calls(self, info: FunctionInfo) -> None:
        resolved: list[CallSite] = []
        for site in info.calls:
            callee = self._resolve_call(info, site.display)
            if callee is not None:
                resolved.append(CallSite(callee, site.display, site.line))
        info.calls = resolved

    def _resolve_call(self, info: FunctionInfo,
                      dotted: str) -> str | None:
        parts = dotted.split(".")
        module = info.module
        classes = self._classes.get(module, {})
        # self.method()/cls.method(): the enclosing class, if any.
        if parts[0] in ("self", "cls") and len(parts) == 2:
            local = info.qualname.split(":", 1)[1].split(".")
            for depth in range(len(local) - 1, 0, -1):
                cls = local[depth - 1]
                if parts[1] in classes.get(cls, ()):
                    return f"{module}:{cls}.{parts[1]}"
            return None
        # Plain name: module-level function / class instantiation.
        if len(parts) == 1:
            name = parts[0]
            if f"{module}:{name}" in self.functions:
                return f"{module}:{name}"
            if name in classes and "__init__" in classes[name]:
                return f"{module}:{name}.__init__"
            binding = self._bindings.get(module, {}).get(name)
            if binding is not None and binding.kind == "symbol":
                return self._lookup(binding.module, binding.attr)
            return None
        # Dotted: aliased module, imported class, or local class.
        binding = self._bindings.get(module, {}).get(parts[0])
        if binding is not None and binding.kind == "module":
            target = binding.module
            for i in range(1, len(parts) - 1):
                deeper = self.resolve_module(f"{target}.{parts[i]}")
                if deeper is None:
                    return self._lookup(target, ".".join(parts[i:]))
                target = deeper
            return self._lookup(target, parts[-1])
        if binding is not None and binding.kind == "symbol" \
                and len(parts) == 2:
            return self._lookup(binding.module,
                                f"{binding.attr}.{parts[1]}")
        if parts[0] in classes and len(parts) == 2:
            return self._lookup(module, dotted)
        # Absolute dotted path spelled inline (rare, but cheap to try).
        for split in range(len(parts) - 1, 0, -1):
            target = self.resolve_module(".".join(parts[:split]))
            if target is not None:
                return self._lookup(target, ".".join(parts[split:]))
        return None

    def _lookup(self, module: str, local: str) -> str | None:
        """A function/method/constructor named ``local`` in ``module``."""
        qualname = f"{module}:{local}"
        if qualname in self.functions:
            return qualname
        init = f"{module}:{local}.__init__"
        if init in self.functions:
            return init
        return None

    # -- queries ---------------------------------------------------------
    def callers(self) -> dict[str, list[tuple[str, CallSite]]]:
        """Reverse call graph: callee -> [(caller, site), ...]."""
        if self._callers is None:
            reverse: dict[str, list[tuple[str, CallSite]]] = {}
            for info in self.functions.values():
                for site in info.calls:
                    reverse.setdefault(site.callee, []).append(
                        (info.qualname, site))
            self._callers = reverse
        return self._callers


#: Memo: every project rule in one engine run receives the same list
#: object, so the model is built once per run, not once per rule.
_MEMO: tuple[int, ProgramModel] | None = None


def build_model(contexts: Sequence["FileContext"],
                root_name: str = "") -> ProgramModel:
    """Build (or reuse) the :class:`ProgramModel` for one engine run.

    Memoized on the context list so the three whole-program rules
    share a single symbol table and call graph per lint invocation.
    """
    global _MEMO
    key = id(contexts)
    if _MEMO is not None and _MEMO[0] == key \
            and _MEMO[1].contexts == list(contexts):
        return _MEMO[1]
    model = ProgramModel(contexts, root_name)
    _MEMO = (key, model)
    return model

"""``fingerprint-purity`` — the functions folded into fingerprints.

``config_fingerprint`` decides which cached result a config maps to;
anything it (transitively) computes from must be a pure function of
its arguments, or two runs of the same sweep silently read different
cache entries.  This rule takes the *required-pure* set — functions
named ``config_fingerprint``/``replay_path_for``/``canonical`` plus
anything annotated ``# repro-lint: pure -- <why>`` — closes it over
in-tree callees, and flags every *known-impure* effect in the closure:

* ``global``/``nonlocal`` declarations and writes through module-level
  names (the memo-table pattern);
* I/O calls (``open``, ``print``, ``os.*``/``sys.*``/``subprocess.*``,
  path read/write methods, ``json.dump``/``json.load``);
* any determinism taint source (clock, RNG, environment, ...).

It deliberately does *not* try to prove purity — stdlib calls like
``json.dumps`` or ``hashlib.sha256`` would make a whitelist brittle —
it only rejects effects it positively recognises.  Module-level
``*_SCHEMA`` constants get the same treatment: they version the
on-disk formats fingerprints embed, so they must stay literal ints.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, List

from repro.lint.findings import Finding
from repro.lint.program.model import (FunctionInfo, ProgramModel,
                                      build_model)
from repro.lint.rules import ProjectRule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import FileContext

_REQUIRED_PURE = frozenset(
    {"config_fingerprint", "replay_path_for", "canonical"})


def _required_roots(model: ProgramModel) -> list[FunctionInfo]:
    return [info for info in model.functions.values()
            if info.name in _REQUIRED_PURE or info.pure_annotated]


class FingerprintPurityRule(ProjectRule):
    """Fingerprint-folded functions must stay effect-free."""

    name = "fingerprint-purity"
    severity = "error"
    description = ("fingerprint-folded function (or a callee) mutates "
                   "globals, does I/O, or reads a taint source")

    def check_project(self, contexts: "List[FileContext]",
                      ) -> Iterable[Finding]:
        model = build_model(contexts)
        roots = _required_roots(model)
        root_names = {info.qualname for info in roots}
        for root in roots:
            yield from self._check_root(model, root, root_names)
        yield from self._check_schema_constants(model)

    def _check_root(self, model: ProgramModel, root: FunctionInfo,
                    root_names: set[str]) -> Iterable[Finding]:
        """Flag impure effects in ``root`` and its callee closure.

        Callees that are themselves required-pure roots are skipped —
        they are checked independently, so their effects are reported
        exactly once, under the function that owns them.
        """
        seen: set[str] = set()
        stack: list[tuple[str, list[str]]] = [(root.qualname, [])]
        while stack:
            qualname, path = stack.pop()
            if qualname in seen:
                continue
            seen.add(qualname)
            info = model.functions.get(qualname)
            if info is None or info.sanitizer:
                continue
            if qualname != root.qualname and qualname in root_names:
                continue
            via = ("" if not path else
                   " (reached via " + " -> ".join(
                       [root.display] + [model.functions[q].display
                                         for q in path]) + ")")
            flagged_lines: set[int] = set()
            problems = (
                [(e.line, e.display) for e in info.effects]
                + [(s.line, f"reads nondeterministic {s.kind} "
                    f"({s.display})") for s in info.sources])
            for line, what in sorted(problems):
                if line in flagged_lines:
                    continue
                flagged_lines.add(line)
                subject = ("it" if qualname == root.qualname
                           else info.display)
                yield Finding(
                    self.name, info.ctx.path, line, 1, self.severity,
                    f"{root.display} must stay pure — it is folded "
                    f"into replay fingerprints — but {subject} "
                    f"{what}{via}; hoist the effect out of the "
                    "fingerprint path or drop the `pure` annotation")
            for site in info.calls:
                stack.append((site.callee, path + [site.callee]))

    def _check_schema_constants(self, model: ProgramModel,
                                ) -> Iterable[Finding]:
        for module, ctx in model.modules.items():
            for stmt in ctx.tree.body:
                targets: list[ast.expr]
                if isinstance(stmt, ast.Assign):
                    targets, value = stmt.targets, stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value:
                    targets, value = [stmt.target], stmt.value
                else:
                    continue
                for target in targets:
                    if not (isinstance(target, ast.Name)
                            and target.id.endswith("_SCHEMA")):
                        continue
                    if not (isinstance(value, ast.Constant)
                            and type(value.value) is int):
                        yield Finding(
                            self.name, ctx.path, stmt.lineno, 1,
                            self.severity,
                            f"schema constant {target.id} must be a "
                            "literal int — it versions the on-disk "
                            "format embedded in fingerprints; bump it "
                            "by hand, never compute it")

"""Finding: one diagnostic produced by one rule at one location."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

#: Recognised severities, most severe first.  Severity is advisory —
#: the exit status depends only on whether a finding is baselined.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    ``path`` is relative to the lint root and always uses ``/``
    separators so findings (and the baseline file) are portable across
    platforms and checkouts.
    """

    rule: str
    path: str
    line: int
    col: int
    severity: str
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used to match a committed baseline entry.

        The line/column are deliberately excluded: edits elsewhere in a
        file must not churn the baseline, only a change to the finding
        itself (rule, file, or message) does.
        """
        return (self.rule, self.path, self.message)

    def format_text(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity}: [{self.rule}] {self.message}")


#: Anchor base for SARIF rule help: every rule has an entry in the
#: catalogue whose heading slug is the rule name.  A relative URI
#: reference, resolved against wherever the repository is browsed.
HELP_URI = "docs/lint.md"

#: Descriptions for the engine-emitted pseudo-rules (real rules carry
#: their own ``description`` attribute).
_META_DESCRIPTIONS = {
    "bad-suppression": ("suppression comment is malformed, reasonless, "
                        "or names an unknown rule"),
    "parse-error": "file could not be read or parsed",
}


def _sarif_rules() -> list[dict]:
    # Imported lazily: repro.lint.rules imports this module.
    from repro.lint.rules import ALL_RULES, META_RULES

    catalogue = [(cls.name, cls.description, cls.severity)
                 for cls in ALL_RULES]
    catalogue += [(name, _META_DESCRIPTIONS[name], "error")
                  for name in META_RULES]
    return [{
        "id": name,
        "shortDescription": {"text": description},
        "helpUri": f"{HELP_URI}#{name}",
        "defaultConfiguration": {"level": severity},
    } for name, description, severity in catalogue]


def format_sarif(findings: Sequence[Finding]) -> str:
    """Render findings as a SARIF 2.1.0 log for code-scanning upload."""
    results = [{
        "ruleId": finding.rule,
        "level": finding.severity,
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {"startLine": finding.line,
                           "startColumn": finding.col},
            },
        }],
    } for finding in findings]
    log = {
        "version": "2.1.0",
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri": HELP_URI,
                "rules": _sarif_rules(),
            }},
            "results": results,
        }],
    }
    return json.dumps(log, indent=1, sort_keys=True)


def format_findings(findings: Sequence[Finding], fmt: str = "text",
                    baselined: Sequence[Finding] = ()) -> str:
    """Render findings for the CLI: ``text``, ``json``, or ``sarif``."""
    if fmt == "sarif":
        return format_sarif(findings)
    if fmt == "json":
        payload = {
            "findings": [asdict(f) for f in findings],
            "baselined": [asdict(f) for f in baselined],
            "counts": summarize(findings),
        }
        return json.dumps(payload, indent=1, sort_keys=True)
    lines = [f.format_text() for f in findings]
    if baselined:
        lines.append(f"({len(baselined)} grandfathered finding(s) "
                     "suppressed by the baseline)")
    return "\n".join(lines)


def summarize(findings: Iterable[Finding]) -> dict[str, int]:
    """Finding counts per severity (always includes every severity)."""
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    return counts

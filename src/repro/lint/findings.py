"""Finding: one diagnostic produced by one rule at one location."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

#: Recognised severities, most severe first.  Severity is advisory —
#: the exit status depends only on whether a finding is baselined.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    ``path`` is relative to the lint root and always uses ``/``
    separators so findings (and the baseline file) are portable across
    platforms and checkouts.
    """

    rule: str
    path: str
    line: int
    col: int
    severity: str
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used to match a committed baseline entry.

        The line/column are deliberately excluded: edits elsewhere in a
        file must not churn the baseline, only a change to the finding
        itself (rule, file, or message) does.
        """
        return (self.rule, self.path, self.message)

    def format_text(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity}: [{self.rule}] {self.message}")


def format_findings(findings: Sequence[Finding], fmt: str = "text",
                    baselined: Sequence[Finding] = ()) -> str:
    """Render findings for the CLI in ``text`` or ``json`` format."""
    if fmt == "json":
        payload = {
            "findings": [asdict(f) for f in findings],
            "baselined": [asdict(f) for f in baselined],
            "counts": summarize(findings),
        }
        return json.dumps(payload, indent=1, sort_keys=True)
    lines = [f.format_text() for f in findings]
    if baselined:
        lines.append(f"({len(baselined)} grandfathered finding(s) "
                     "suppressed by the baseline)")
    return "\n".join(lines)


def summarize(findings: Iterable[Finding]) -> dict[str, int]:
    """Finding counts per severity (always includes every severity)."""
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in findings:
        counts[finding.severity] = counts.get(finding.severity, 0) + 1
    return counts

"""``python -m repro lint`` — the CI gate.

Usage::

    python -m repro lint [paths...] [options]

Options:

    --format=text|json|sarif
                         output format                (default text)
    --baseline           rewrite the baseline file from the current
                         findings (grandfather everything, review the
                         diff, then shrink it over time)
    --baseline-file P    baseline location (default lint-baseline.json
                         next to the repository's src/ directory)
    --root P             lint root (default: the installed repro
                         package directory); finding paths are
                         relative to it
    --rules R1,R2        run only the named rules (default: all)
    --no-cache           skip the result cache under
                         ``~/.cache/repro/lint-v1``
    --list-rules         print the rule catalogue and exit

Exit status: 0 when every finding is grandfathered (or none exist),
1 on any new finding or baseline problem, 2 on usage errors.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

from repro.lint.baseline import Baseline, BaselineError
from repro.lint.engine import run_lint
from repro.lint.findings import format_findings, summarize
from repro.lint.rules import ALL_RULES


def default_root() -> pathlib.Path:
    """The installed ``repro`` package directory.

    Located via ``find_spec`` rather than importing the package: the
    layering table promises the linter never executes simulator code,
    and ``import repro`` would run the root ``__init__``.
    """
    spec = importlib.util.find_spec("repro")
    if spec is None or not spec.submodule_search_locations:
        raise RuntimeError("cannot locate the repro package")
    return pathlib.Path(list(spec.submodule_search_locations)[0]
                        ).resolve()


def default_baseline_file(root: pathlib.Path) -> pathlib.Path:
    """``lint-baseline.json`` at the repository root (``src/../``)."""
    if root.parent.name == "src":
        return root.parent.parent / "lint-baseline.json"
    return root / "lint-baseline.json"


def _usage_error(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    print("try `python -m repro lint --help`", file=sys.stderr)
    return 2


def main(argv: list[str] | None = None) -> int:
    """Run the linter CLI and return its exit status (see module doc)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    fmt = "text"
    rewrite_baseline = False
    use_cache = True
    rule_filter: list[str] | None = None
    root: pathlib.Path | None = None
    baseline_file: pathlib.Path | None = None
    paths: list[str] = []

    it = iter(argv)
    for arg in it:
        if arg in ("-h", "--help"):
            print(__doc__)
            return 0
        if arg == "--list-rules":
            for cls in ALL_RULES:
                print(f"{cls.name:<18} {cls.severity:<8} "
                      f"{cls.description}")
            return 0
        if arg == "--baseline":
            rewrite_baseline = True
        elif arg == "--no-cache":
            use_cache = False
        elif arg.startswith("--rules"):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, "")
            if not value:
                return _usage_error("--rules requires a rule list")
            rule_filter = [name.strip() for name in value.split(",")
                           if name.strip()]
            known = {cls.name for cls in ALL_RULES}
            unknown = sorted(set(rule_filter) - known)
            if unknown:
                return _usage_error(
                    f"--rules names unknown rule(s): "
                    f"{', '.join(unknown)}")
        elif arg.startswith("--format"):
            value = (arg.split("=", 1)[1] if "=" in arg
                     else next(it, ""))
            if value not in ("text", "json", "sarif"):
                return _usage_error(
                    f"--format must be text, json, or sarif, "
                    f"got {value!r}")
            fmt = value
        elif arg.startswith("--baseline-file"):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, "")
            if not value:
                return _usage_error("--baseline-file requires a path")
            baseline_file = pathlib.Path(value)
        elif arg.startswith("--root"):
            value = arg.split("=", 1)[1] if "=" in arg else next(it, "")
            if not value:
                return _usage_error("--root requires a path")
            root = pathlib.Path(value)
        elif arg.startswith("-"):
            return _usage_error(f"unknown flag {arg!r}")
        else:
            paths.append(arg)

    root = root if root is not None else default_root()
    if not root.exists():
        return _usage_error(f"lint root {root} does not exist")
    baseline_file = (baseline_file if baseline_file is not None
                     else default_baseline_file(root))

    rules = (None if rule_filter is None else
             [cls for cls in ALL_RULES if cls.name in rule_filter])
    findings = run_lint(root, paths or None, rules=rules,
                        cache=use_cache)

    if rewrite_baseline:
        count = Baseline.write(baseline_file, findings)
        print(f"baseline: recorded {count} grandfathered finding(s) "
              f"in {baseline_file}")
        print("review the diff and replace each entry's reason with "
              "why it is safe to defer")
        return 0

    try:
        baseline = Baseline.load(baseline_file)
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    new, grandfathered = baseline.partition(findings)
    new.extend(baseline.audit(findings))
    new.sort(key=lambda finding: finding.sort_key())

    output = format_findings(new, fmt, baselined=grandfathered)
    if output:
        print(output)
    if fmt == "text":
        counts = summarize(new)
        checked = "clean" if not new else ", ".join(
            f"{count} {severity}(s)" for severity, count
            in counts.items() if count)
        print(f"repro-lint: {checked} "
              f"({len(grandfathered)} baselined)")
    return 1 if new else 0

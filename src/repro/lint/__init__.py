"""repro-lint: an AST-based determinism & invariant linter.

The simulator's methodology rests on counter measurements being
reproducible and internally consistent.  Two whole bug classes have
already cost PRs to chase at runtime:

* **nondeterminism** — salted builtin ``hash()`` leaking into simulated
  branch PCs, lock slots, Bloom probes, and shuffle partitions made a
  parallel sweep diverge from the serial run byte-for-byte;
* **counter-schema drift** — a counter incremented under a name the
  schema never declared (or a part/whole invariant naming a counter
  that no longer exists) silently corrupts figures, and the runtime
  validator in :mod:`repro.core.validate` only fires on values a sweep
  happens to produce.

This package makes both classes impossible to *merge* instead of
expensive to debug: a small static-analysis engine walks every module's
AST, runs a simulator-specific rule set, honours inline
``# repro-lint: disable=<rule> -- <reason>`` suppressions, and compares
the surviving findings against a committed baseline of grandfathered
entries.  ``python -m repro lint`` exits non-zero on any new finding,
and CI runs it on every push.

See ``docs/lint.md`` for the rule catalogue and workflows.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.engine import FileContext, LintEngine, run_lint
from repro.lint.findings import Finding, SEVERITIES
from repro.lint.rules import ALL_RULES, rule_names

__all__ = [
    "ALL_RULES",
    "Baseline",
    "FileContext",
    "Finding",
    "LintEngine",
    "SEVERITIES",
    "rule_names",
    "run_lint",
]

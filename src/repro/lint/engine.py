"""The lint engine: file discovery, parsing, rule dispatch, suppression.

The engine is deliberately small: it turns every ``*.py`` file under a
root into a :class:`FileContext` (one parse each), hands the contexts
to the registered rules, and filters the resulting findings through the
inline suppressions.  All simulator knowledge lives in the rules.
"""

from __future__ import annotations

import ast
import hashlib
import pathlib
from dataclasses import asdict, dataclass, field
from typing import Iterable, Sequence

from repro.lint.cache import LintCache, file_digest, ruleset_version
from repro.lint.findings import Finding
from repro.lint.rules import ALL_RULES, ProjectRule, Rule, rule_names
from repro.lint.suppress import (Suppression, is_suppressed,
                                 parse_suppressions, statement_anchors)

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis",
                        ".pytest_cache", ".benchmarks"})


@dataclass
class FileContext:
    """Everything the rules need to know about one source file."""

    path: str                       # relative to the lint root, posix
    abspath: pathlib.Path
    source: str
    lines: list[str]
    tree: ast.Module
    suppressions: dict[int, Suppression] = field(default_factory=dict)
    #: line -> first line of the logical statement spanning it, so a
    #: suppression on a statement's first line covers the whole span.
    anchors: dict[int, int] = field(default_factory=dict)


def _iter_python_files(root: pathlib.Path,
                       paths: Sequence[pathlib.Path] | None,
                       ) -> Iterable[pathlib.Path]:
    targets = [root] if not paths else list(paths)
    seen: set[pathlib.Path] = set()
    for target in targets:
        if target.is_file():
            candidates: Iterable[pathlib.Path] = (target,)
        else:
            candidates = sorted(target.rglob("*.py"))
        for candidate in candidates:
            if candidate in seen:
                continue
            if any(part in _SKIP_DIRS or part.startswith(".")
                   for part in candidate.parts):
                continue
            seen.add(candidate)
            yield candidate


def _relpath(path: pathlib.Path, root: pathlib.Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


class LintEngine:
    """Run a rule set over a source tree."""

    def __init__(self, rules: Sequence[type[Rule]] | None = None) -> None:
        self.rules = [cls() for cls in (rules if rules is not None
                                        else ALL_RULES)]
        # Suppression validity is judged against the full registry, not
        # the active subset: `--rules=taint-flow` must not turn every
        # `disable=builtin-hash` comment in the tree into an error.
        self.known_rules = (rule_names()
                            | frozenset(r.name for r in self.rules))

    # ------------------------------------------------------------------
    def load(self, root: pathlib.Path,
             paths: Sequence[pathlib.Path] | None = None,
             ) -> tuple[list[FileContext], list[Finding]]:
        """Parse every target file; syntax errors become findings."""
        contexts: list[FileContext] = []
        findings: list[Finding] = []
        for abspath in _iter_python_files(root, paths):
            relpath = _relpath(abspath, root)
            try:
                source = abspath.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(abspath))
            except (OSError, SyntaxError, ValueError) as exc:
                findings.append(Finding(
                    "parse-error", relpath,
                    getattr(exc, "lineno", None) or 1, 1, "error",
                    f"cannot lint: {exc}"))
                continue
            lines = source.splitlines()
            suppressions, bad = parse_suppressions(
                relpath, lines, self.known_rules)
            findings.extend(bad)
            contexts.append(FileContext(relpath, abspath, source, lines,
                                        tree, suppressions,
                                        statement_anchors(tree)))
        return contexts, findings

    def _cache_salt(self) -> str:
        """Rule-set identity: package sources + the active subset."""
        return ruleset_version() + "|" + ",".join(
            sorted(rule.name for rule in self.rules))

    def _tree_digest(self, root: pathlib.Path,
                     paths: Sequence[pathlib.Path] | None,
                     ) -> tuple[str, dict[str, str]] | None:
        """``(tree key, path -> file sha)`` or None if any read fails."""
        shas: dict[str, str] = {}
        try:
            for abspath in _iter_python_files(root, paths):
                shas[_relpath(abspath, root)] = file_digest(
                    abspath.read_bytes())
        except OSError:
            return None
        digest = hashlib.sha256(self._cache_salt().encode())
        for path in sorted(shas):
            digest.update(f"\0{path}\0{shas[path]}".encode())
        return digest.hexdigest(), shas

    def run(self, root: str | pathlib.Path,
            paths: Sequence[str | pathlib.Path] | None = None,
            cache: LintCache | None = None) -> list[Finding]:
        """All findings for the tree under ``root``, sorted and
        suppression-filtered.

        ``paths`` restricts *per-file* rules to a subset of files;
        project-wide rules always see every parsed context so
        cross-file checks stay sound.  With a ``cache``, an unchanged
        tree returns its recorded findings without parsing anything,
        and unchanged files skip their per-file rules on a partial hit.
        """
        root = pathlib.Path(root)
        targets = ([pathlib.Path(p) for p in paths] if paths else None)

        manifest = (self._tree_digest(root, targets)
                    if cache is not None else None)
        if manifest is not None:
            hit = cache.get(f"tree-{manifest[0]}")
            if hit is not None and isinstance(hit.get("findings"), list):
                try:
                    return [Finding(**entry)
                            for entry in hit["findings"]]
                except TypeError:
                    pass  # stale/corrupt payload: fall through to cold

        contexts, findings = self.load(root, targets)
        file_rules = [rule for rule in self.rules
                      if not isinstance(rule, ProjectRule)]
        for ctx in contexts:
            key = None
            if manifest is not None and ctx.path in manifest[1]:
                digest = hashlib.sha256(
                    f"{self._cache_salt()}\0{ctx.path}"
                    f"\0{manifest[1][ctx.path]}".encode())
                key = f"file-{digest.hexdigest()}"
                entry = cache.get(key)
                if entry is not None \
                        and isinstance(entry.get("findings"), list):
                    try:
                        findings.extend(Finding(**item)
                                        for item in entry["findings"])
                        continue
                    except TypeError:
                        pass
            file_findings = [finding for rule in file_rules
                             for finding in rule.check_file(ctx)]
            findings.extend(file_findings)
            if key is not None:
                cache.put(key, {"findings": [asdict(f)
                                             for f in file_findings]})
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                findings.extend(rule.check_project(contexts))

        by_path = {ctx.path: (ctx.suppressions, ctx.anchors)
                   for ctx in contexts}
        empty: tuple[dict, dict] = ({}, {})
        kept = [
            finding for finding in findings
            if finding.rule == "bad-suppression"
            or not is_suppressed(finding,
                                 *by_path.get(finding.path, empty))
        ]
        result = sorted(set(kept), key=Finding.sort_key)
        if manifest is not None:
            cache.put(f"tree-{manifest[0]}",
                      {"findings": [asdict(f) for f in result]})
        return result


def run_lint(root: str | pathlib.Path,
             paths: Sequence[str | pathlib.Path] | None = None,
             rules: Sequence[type[Rule]] | None = None,
             cache: bool = False) -> list[Finding]:
    """Convenience wrapper: lint ``root`` with the default rule set.

    Caching is opt-in here (tests and library callers want hermetic
    runs); the CLI turns it on unless ``--no-cache`` is passed.
    """
    return LintEngine(rules).run(root, paths,
                                 LintCache() if cache else None)

"""The lint engine: file discovery, parsing, rule dispatch, suppression.

The engine is deliberately small: it turns every ``*.py`` file under a
root into a :class:`FileContext` (one parse each), hands the contexts
to the registered rules, and filters the resulting findings through the
inline suppressions.  All simulator knowledge lives in the rules.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.lint.findings import Finding
from repro.lint.rules import ALL_RULES, ProjectRule, Rule, rule_names
from repro.lint.suppress import (Suppression, is_suppressed,
                                 parse_suppressions)

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis",
                        ".pytest_cache", ".benchmarks"})


@dataclass
class FileContext:
    """Everything the rules need to know about one source file."""

    path: str                       # relative to the lint root, posix
    abspath: pathlib.Path
    source: str
    lines: list[str]
    tree: ast.Module
    suppressions: dict[int, Suppression] = field(default_factory=dict)


def _iter_python_files(root: pathlib.Path,
                       paths: Sequence[pathlib.Path] | None,
                       ) -> Iterable[pathlib.Path]:
    targets = [root] if not paths else list(paths)
    seen: set[pathlib.Path] = set()
    for target in targets:
        if target.is_file():
            candidates: Iterable[pathlib.Path] = (target,)
        else:
            candidates = sorted(target.rglob("*.py"))
        for candidate in candidates:
            if candidate in seen:
                continue
            if any(part in _SKIP_DIRS or part.startswith(".")
                   for part in candidate.parts):
                continue
            seen.add(candidate)
            yield candidate


def _relpath(path: pathlib.Path, root: pathlib.Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


class LintEngine:
    """Run a rule set over a source tree."""

    def __init__(self, rules: Sequence[type[Rule]] | None = None) -> None:
        self.rules = [cls() for cls in (rules if rules is not None
                                        else ALL_RULES)]
        self.known_rules = (rule_names() if rules is None else
                            frozenset(r.name for r in self.rules)
                            | {"bad-suppression"})

    # ------------------------------------------------------------------
    def load(self, root: pathlib.Path,
             paths: Sequence[pathlib.Path] | None = None,
             ) -> tuple[list[FileContext], list[Finding]]:
        """Parse every target file; syntax errors become findings."""
        contexts: list[FileContext] = []
        findings: list[Finding] = []
        for abspath in _iter_python_files(root, paths):
            relpath = _relpath(abspath, root)
            try:
                source = abspath.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(abspath))
            except (OSError, SyntaxError, ValueError) as exc:
                findings.append(Finding(
                    "parse-error", relpath,
                    getattr(exc, "lineno", None) or 1, 1, "error",
                    f"cannot lint: {exc}"))
                continue
            lines = source.splitlines()
            suppressions, bad = parse_suppressions(
                relpath, lines, self.known_rules)
            findings.extend(bad)
            contexts.append(FileContext(relpath, abspath, source, lines,
                                        tree, suppressions))
        return contexts, findings

    def run(self, root: str | pathlib.Path,
            paths: Sequence[str | pathlib.Path] | None = None,
            ) -> list[Finding]:
        """All findings for the tree under ``root``, sorted and
        suppression-filtered.

        ``paths`` restricts *per-file* rules to a subset of files;
        project-wide rules always see every parsed context so
        cross-file checks stay sound.
        """
        root = pathlib.Path(root)
        targets = ([pathlib.Path(p) for p in paths] if paths else None)
        contexts, findings = self.load(root, targets)
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                findings.extend(rule.check_project(contexts))
            else:
                for ctx in contexts:
                    findings.extend(rule.check_file(ctx))
        by_path = {ctx.path: ctx.suppressions for ctx in contexts}
        kept = [
            finding for finding in findings
            if finding.rule == "bad-suppression"
            or not is_suppressed(finding, by_path.get(finding.path, {}))
        ]
        return sorted(set(kept), key=Finding.sort_key)


def run_lint(root: str | pathlib.Path,
             paths: Sequence[str | pathlib.Path] | None = None,
             rules: Sequence[type[Rule]] | None = None) -> list[Finding]:
    """Convenience wrapper: lint ``root`` with the default rule set."""
    return LintEngine(rules).run(root, paths)

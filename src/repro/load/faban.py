"""Faban-like closed-loop client driver (§3.2).

The paper simulates Media Streaming, Web Frontend, and Web Search
clients with the Faban harness.  This driver models a pool of concurrent
client sessions; each session repeatedly issues the next operation of
its scenario (chosen by the workload's operation mix) against the
server under test.  Sessions are independent — exactly the "large
numbers of completely independent requests" property of §2.2.

Resilience: the driver carries a per-request
:class:`~repro.faults.retry.RetryPolicy` (timeouts, capped jittered
backoff, hedging) and a :class:`~repro.faults.metrics.ServiceMetrics`
accumulator recording the client-visible outcome of every operation,
mirroring Faban's operation-level success/error accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.faults.metrics import ServiceMetrics
from repro.faults.retry import RetryPolicy


@dataclass
class ClientSession:
    """One simulated client with per-session state the app can use."""

    session_id: int
    rng: random.Random
    state: dict = field(default_factory=dict)


class FabanDriver:
    """Round-robin closed-loop driver over a pool of client sessions."""

    def __init__(
        self,
        num_clients: int,
        operations: Sequence[tuple[str, float]],
        seed: int = 0,
        retry: RetryPolicy | None = None,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        """``operations`` is a weighted mix of (operation name, weight)."""
        if num_clients <= 0:
            raise ValueError("need at least one client")
        if not operations:
            raise ValueError("need a non-empty operation mix")
        total = sum(weight for _, weight in operations)
        if total <= 0:
            raise ValueError("operation weights must sum to a positive value")
        self.retry = retry if retry is not None else RetryPolicy()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._ops = [name for name, _ in operations]
        self._cdf: list[float] = []
        acc = 0.0
        for _, weight in operations:
            acc += weight / total
            self._cdf.append(acc)
        self.sessions = [
            ClientSession(i, random.Random((seed << 16) | i))
            for i in range(num_clients)
        ]
        self._next_session = 0
        self._partition_cursor: dict[tuple[int, int], int] = {}
        self.issued: dict[str, int] = {name: 0 for name in self._ops}

    def next_request(self, affinity: int | None = None,
                     num_partitions: int = 4) -> tuple[ClientSession, str]:
        """Pick the next session (round-robin) and its next operation.

        With ``affinity`` set, only sessions of that partition are
        served — connection-to-core affinity, as receive-side scaling
        provides on the paper's NICs (§3)."""
        if affinity is not None:
            key = (affinity % num_partitions, num_partitions)
            cursor = self._partition_cursor.get(key, key[0])
            session = self.sessions[cursor % len(self.sessions)]
            self._partition_cursor[key] = cursor + num_partitions
            draw = session.rng.random()
            for name, edge in zip(self._ops, self._cdf):
                if draw <= edge:
                    self.issued[name] += 1
                    return session, name
            self.issued[self._ops[-1]] += 1
            return session, self._ops[-1]
        session = self.sessions[self._next_session]
        self._next_session = (self._next_session + 1) % len(self.sessions)
        draw = session.rng.random()
        for name, edge in zip(self._ops, self._cdf):
            if draw <= edge:
                self.issued[name] += 1
                return session, name
        self.issued[self._ops[-1]] += 1
        return session, self._ops[-1]

    def observe(self, latency: int, ok: bool = True, retries: int = 0,
                dropped: bool = False) -> None:
        """Record one completed operation's client-visible outcome,
        classifying hedges and timeouts against the retry policy."""
        self.metrics.observe(
            latency,
            ok=ok,
            retries=retries,
            hedged=latency > self.retry.hedge_after,
            timed_out=latency > self.retry.timeout,
            dropped=dropped,
        )

    def run(
        self,
        handler: Callable[[ClientSession, str], None],
        num_requests: int,
    ) -> None:
        """Issue ``num_requests`` operations through ``handler``."""
        for _ in range(num_requests):
            session, op = self.next_request()
            handler(session, op)

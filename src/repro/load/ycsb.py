"""YCSB client (§3.2 Data Serving setup).

"Server load is generated using the YCSB 0.1.3 client that sends
requests following a Zipfian distribution with a 95:5 read to write
request ratio."  The client draws keys from a scrambled Zipfian over the
loaded keyspace and emits read/update operations in that ratio.

Resilience: like the real YCSB client library, the generator carries a
per-operation :class:`~repro.faults.retry.RetryPolicy` (timeouts,
capped exponential backoff with jitter, hedged retries past the tail
threshold) and accumulates the client-visible outcome of every request
in a :class:`~repro.faults.metrics.ServiceMetrics` — goodput, retry
rate, and simulated latency percentiles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.faults.metrics import ServiceMetrics
from repro.faults.retry import RetryPolicy
from repro.load.distributions import ScrambledZipf


@dataclass(frozen=True)
class YcsbOp:
    """One generated operation: a read or an update of ``key``."""

    kind: str  # 'read' or 'update'
    key: int


class YcsbClient:
    """Closed-loop YCSB workload generator."""

    def __init__(
        self,
        record_count: int,
        read_fraction: float = 0.95,
        theta: float = 0.99,
        seed: int = 0,
        retry: RetryPolicy | None = None,
        metrics: ServiceMetrics | None = None,
    ) -> None:
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        self.record_count = record_count
        self.read_fraction = read_fraction
        self._keys = ScrambledZipf(record_count, theta, seed)
        self._rng = random.Random(seed ^ 0x5EED)
        self.reads_issued = 0
        self.updates_issued = 0
        self.retry = retry if retry is not None else RetryPolicy()
        self.metrics = metrics if metrics is not None else ServiceMetrics()

    def hot_keys(self, count: int) -> list[int]:
        """The keys of the ``count`` most popular Zipf ranks (the hot set
        a long steady-state run leaves resident in the LLC)."""
        from repro.load.distributions import ScrambledZipf

        count = min(count, self.record_count)
        return [ScrambledZipf._fnv(rank) % self.record_count for rank in range(count)]

    def next_op(self) -> YcsbOp:
        """Draw the next operation: a scrambled-Zipfian key and a kind
        honouring the configured read:write ratio."""
        key = self._keys.next()
        if self._rng.random() < self.read_fraction:
            self.reads_issued += 1
            return YcsbOp("read", key)
        self.updates_issued += 1
        return YcsbOp("update", key)

    def observe(self, latency: int, ok: bool = True, retries: int = 0,
                dropped: bool = False) -> None:
        """Record one completed operation's client-visible outcome.

        Timeout and hedging classification come from the client's
        retry policy: a service time past ``hedge_after`` would have
        triggered a hedged duplicate, one past ``timeout`` counts as a
        client-observed timeout.
        """
        self.metrics.observe(
            latency,
            ok=ok,
            retries=retries,
            hedged=latency > self.retry.hedge_after,
            timed_out=latency > self.retry.timeout,
            dropped=dropped,
        )

"""Request-popularity distributions and open-loop arrival processes.

YCSB's Zipfian generator (Gray et al.'s algorithm, as used by the real
YCSB) with the standard 0.99 skew constant, plus a scrambled variant
that spreads the popular items across the keyspace — matching how YCSB
hashes item ranks so that hot keys are not physically adjacent.

The arrival processes generate *inter-arrival gaps* for open-loop load
(requests arrive on the generator's schedule whether or not the server
has answered — the precondition for coordinated-omission-safe latency
measurement).  Gaps are integer simulated microseconds, a function only
of the seed and the sequence of ``next_gap(now_us)`` calls.
"""

from __future__ import annotations

import math
import random


class UniformGenerator:
    """Uniform over [0, n)."""

    def __init__(self, n: int, seed: int = 0) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self.n)


class ZipfGenerator:
    """Zipfian over [0, n) with P(rank k) proportional to 1/(k+1)^theta.

    Implements the rejection-free inverse method of Gray et al. (the
    algorithm YCSB itself uses), so draws are O(1).
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(min(2, n), theta)
        denominator = 1.0 - self._zeta2 / self._zetan
        if abs(denominator) < 1e-12:
            # Degenerate keyspaces (n <= 2): the closed form collapses;
            # eta only matters for ranks >= 2, which cannot occur.
            self._eta = 0.0
        else:
            self._eta = (
                1.0 - (2.0 / n) ** (1.0 - theta)
            ) / denominator

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Direct sum for small n; Euler-Maclaurin approximation for large.
        if n <= 10000:
            return sum(1.0 / (i ** theta) for i in range(1, n + 1))
        head = sum(1.0 / (i ** theta) for i in range(1, 10001))
        # integral approximation of the tail
        tail = ((n ** (1.0 - theta)) - (10000 ** (1.0 - theta))) / (1.0 - theta)
        return head + tail

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * math.pow(self._eta * u - self._eta + 1.0, self._alpha))


class ScrambledZipf:
    """Zipf ranks hashed over the keyspace (YCSB's scrambled Zipfian)."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0) -> None:
        self.n = n
        self._zipf = ZipfGenerator(n, theta, seed)

    @staticmethod
    def _fnv(value: int) -> int:
        h = 0xCBF29CE484222325
        for _ in range(8):
            h ^= value & 0xFF
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            value >>= 8
        return h

    def next(self) -> int:
        return self._fnv(self._zipf.next()) % self.n


# -- open-loop arrival processes -------------------------------------------

class PoissonArrivals:
    """Memoryless arrivals: exponential gaps around ``mean_gap_us``."""

    def __init__(self, mean_gap_us: int, seed: int = 0) -> None:
        if mean_gap_us <= 0:
            raise ValueError("mean_gap_us must be positive")
        self.mean_gap_us = mean_gap_us
        self._rng = random.Random(seed)

    def next_gap(self, now_us: int) -> int:
        return max(1, int(self._rng.expovariate(1.0 / self.mean_gap_us)))


class DiurnalArrivals:
    """Sinusoidally modulated Poisson arrivals (a compressed day).

    The instantaneous rate swings by ``amplitude`` around the base rate
    over one ``period_us`` cycle — the scale-out pattern of §2: fleets
    are sized for the peak, so off-peak measurements without open-loop
    accounting flatter the tail.
    """

    def __init__(self, mean_gap_us: int, period_us: int = 200_000,
                 amplitude: float = 0.5, seed: int = 0) -> None:
        if mean_gap_us <= 0:
            raise ValueError("mean_gap_us must be positive")
        if period_us <= 0:
            raise ValueError("period_us must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        self.mean_gap_us = mean_gap_us
        self.period_us = period_us
        self.amplitude = amplitude
        self._rng = random.Random(seed)

    def next_gap(self, now_us: int) -> int:
        phase = 2.0 * math.pi * (now_us % self.period_us) / self.period_us
        rate_scale = 1.0 + self.amplitude * math.sin(phase)
        gap = self._rng.expovariate(rate_scale / self.mean_gap_us)
        return max(1, int(gap))


class BurstyArrivals:
    """On/off arrivals: Poisson bursts separated by quiet periods.

    During a burst the gap shrinks by ``burst_factor``; between bursts
    it stretches by the same factor, keeping the long-run rate near the
    base rate while concentrating queueing pressure.
    """

    def __init__(self, mean_gap_us: int, burst_us: int = 20_000,
                 quiet_us: int = 60_000, burst_factor: float = 4.0,
                 seed: int = 0) -> None:
        if mean_gap_us <= 0:
            raise ValueError("mean_gap_us must be positive")
        if burst_us <= 0 or quiet_us <= 0:
            raise ValueError("burst_us and quiet_us must be positive")
        if burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        self.mean_gap_us = mean_gap_us
        self.burst_us = burst_us
        self.quiet_us = quiet_us
        self.burst_factor = burst_factor
        self._rng = random.Random(seed)

    def next_gap(self, now_us: int) -> int:
        cycle = self.burst_us + self.quiet_us
        in_burst = (now_us % cycle) < self.burst_us
        mean = self.mean_gap_us / self.burst_factor if in_burst \
            else self.mean_gap_us * self.burst_factor
        return max(1, int(self._rng.expovariate(1.0 / mean)))


#: Arrival-shape registry for the fleet figure's config grammar.
ARRIVAL_SHAPES = {
    "poisson": PoissonArrivals,
    "diurnal": DiurnalArrivals,
    "bursty": BurstyArrivals,
}


def build_arrivals(shape: str, mean_gap_us: int, seed: int = 0):
    """An arrival process by shape name, at the given base rate."""
    if shape not in ARRIVAL_SHAPES:
        raise KeyError(f"unknown arrival shape {shape!r}; "
                       f"known: {', '.join(ARRIVAL_SHAPES)}")
    return ARRIVAL_SHAPES[shape](mean_gap_us, seed=seed)

"""Request-popularity distributions.

YCSB's Zipfian generator (Gray et al.'s algorithm, as used by the real
YCSB) with the standard 0.99 skew constant, plus a scrambled variant
that spreads the popular items across the keyspace — matching how YCSB
hashes item ranks so that hot keys are not physically adjacent.
"""

from __future__ import annotations

import math
import random


class UniformGenerator:
    """Uniform over [0, n)."""

    def __init__(self, n: int, seed: int = 0) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self.n)


class ZipfGenerator:
    """Zipfian over [0, n) with P(rank k) proportional to 1/(k+1)^theta.

    Implements the rejection-free inverse method of Gray et al. (the
    algorithm YCSB itself uses), so draws are O(1).
    """

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(min(2, n), theta)
        denominator = 1.0 - self._zeta2 / self._zetan
        if abs(denominator) < 1e-12:
            # Degenerate keyspaces (n <= 2): the closed form collapses;
            # eta only matters for ranks >= 2, which cannot occur.
            self._eta = 0.0
        else:
            self._eta = (
                1.0 - (2.0 / n) ** (1.0 - theta)
            ) / denominator

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Direct sum for small n; Euler-Maclaurin approximation for large.
        if n <= 10000:
            return sum(1.0 / (i ** theta) for i in range(1, n + 1))
        head = sum(1.0 / (i ** theta) for i in range(1, 10001))
        # integral approximation of the tail
        tail = ((n ** (1.0 - theta)) - (10000 ** (1.0 - theta))) / (1.0 - theta)
        return head + tail

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * math.pow(self._eta * u - self._eta + 1.0, self._alpha))


class ScrambledZipf:
    """Zipf ranks hashed over the keyspace (YCSB's scrambled Zipfian)."""

    def __init__(self, n: int, theta: float = 0.99, seed: int = 0) -> None:
        self.n = n
        self._zipf = ZipfGenerator(n, theta, seed)

    @staticmethod
    def _fnv(value: int) -> int:
        h = 0xCBF29CE484222325
        for _ in range(8):
            h ^= value & 0xFF
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            value >>= 8
        return h

    def next(self) -> int:
        return self._fnv(self._zipf.next()) % self.n

"""Client load generators.

The paper drives its servers with the YCSB client (Data Serving) and the
Faban harness (Media Streaming, Web Frontend, Web Search).  This package
provides equivalents: key/popularity distributions, a YCSB client with
the paper's Zipfian 95:5 read/write mix, and a closed-loop multi-client
driver in the style of Faban.
"""

from repro.load.distributions import ZipfGenerator, UniformGenerator, ScrambledZipf
from repro.load.ycsb import YcsbClient, YcsbOp
from repro.load.faban import FabanDriver, ClientSession

__all__ = [
    "ZipfGenerator",
    "UniformGenerator",
    "ScrambledZipf",
    "YcsbClient",
    "YcsbOp",
    "FabanDriver",
    "ClientSession",
]

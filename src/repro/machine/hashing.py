"""Deterministic hashing for simulated layouts.

Builtin ``hash()`` of strings is salted per process (PYTHONHASHSEED),
so any simulated quantity derived from it — static branch-site PCs,
hash-table bucket choices, shuffle partitions — silently varies from
one interpreter to the next.  Serial runs masked this; a parallel sweep
fans cells out to worker *processes*, each with its own salt, and the
tables stopped being byte-identical to the serial ones.

Everything that maps a name or key to a simulated address or bucket
must go through :func:`stable_hash` instead.
"""

from __future__ import annotations

import zlib

#: Types whose ``repr`` is value-determined and process-independent.
#: (``bool`` is an ``int`` subclass; ``None`` is handled explicitly.)
_SCALAR_TYPES = (int, float, str, bytes)


def _check_part(part: object) -> None:
    """Reject parts whose ``repr`` is not a stable pure function of
    their value.

    The default ``object.__repr__`` embeds a memory address
    (``<object object at 0x7f...>``), which differs on every run and
    reintroduces exactly the cross-process divergence ``stable_hash``
    exists to prevent — but *silently*, as a valid-looking hash.  Only
    int/str/bytes/float/bool/None and (recursively) tuples thereof are
    accepted; anything else raises ``TypeError`` at the call site,
    where the bad key is still in hand.
    """
    if part is None or isinstance(part, _SCALAR_TYPES):
        return
    if isinstance(part, tuple):
        for item in part:
            _check_part(item)
        return
    raise TypeError(
        f"stable_hash part {part!r} has type {type(part).__name__}, "
        "whose repr is not guaranteed stable across processes; pass "
        "int/str/bytes/float/bool/None or tuples thereof")


def stable_hash(*parts: object) -> int:
    # repro-lint: sanitizer -- the blessed hash; hashing.py is trusted by the taint pass
    """A deterministic non-negative hash of ``parts``, salt-free.

    A single integer keeps builtin hashing: CPython's int hash is
    unsalted (near-identity), and the simulator's hash-table bucket
    locality for sequentially allocated integer keys is part of the
    calibrated memory behaviour — scattering it would change measured
    off-chip traffic, not just determinism.

    Anything else — strings, or tuples mixing names with ids — is
    folded through CRC-32 of its ``repr``, which is stable across
    processes.  CRC-32 is linear, so a final multiplicative mix (Knuth)
    decorrelates the low bits for modulo bucket selection.

    Parts are restricted to value-repr types (see :func:`_check_part`);
    an ``object()`` whose repr embeds ``id()`` raises ``TypeError``
    instead of silently hashing its memory address.
    """
    if len(parts) == 1 and type(parts[0]) is int:
        return hash(parts[0]) & 0x7FFFFFFFFFFFFFFF
    h = 0
    for part in parts:
        _check_part(part)
        h = zlib.crc32(repr(part).encode("utf-8", "surrogatepass"), h)
    return (h * 2654435761) & 0xFFFFFFFF

"""Deterministic hashing for simulated layouts.

Builtin ``hash()`` of strings is salted per process (PYTHONHASHSEED),
so any simulated quantity derived from it — static branch-site PCs,
hash-table bucket choices, shuffle partitions — silently varies from
one interpreter to the next.  Serial runs masked this; a parallel sweep
fans cells out to worker *processes*, each with its own salt, and the
tables stopped being byte-identical to the serial ones.

Everything that maps a name or key to a simulated address or bucket
must go through :func:`stable_hash` instead.
"""

from __future__ import annotations

import zlib


def stable_hash(*parts: object) -> int:
    """A deterministic non-negative hash of ``parts``, salt-free.

    A single integer keeps builtin hashing: CPython's int hash is
    unsalted (near-identity), and the simulator's hash-table bucket
    locality for sequentially allocated integer keys is part of the
    calibrated memory behaviour — scattering it would change measured
    off-chip traffic, not just determinism.

    Anything else — strings, or tuples mixing names with ids — is
    folded through CRC-32 of its ``repr``, which is stable across
    processes.  CRC-32 is linear, so a final multiplicative mix (Knuth)
    decorrelates the low bits for modulo bucket selection.
    """
    if len(parts) == 1 and type(parts[0]) is int:
        return hash(parts[0]) & 0x7FFFFFFFFFFFFFFF
    h = 0
    for part in parts:
        h = zlib.crc32(repr(part).encode("utf-8", "surrogatepass"), h)
    return (h * 2654435761) & 0xFFFFFFFF

"""Traced abstract machine.

The mini server applications in :mod:`repro.apps` are real programs —
hash probes, B+-tree descents, unit propagation, posting-list merges —
but their data structures live in a *simulated* address space and their
execution is *traced*: every load, store, ALU burst, branch, call, and
system call is emitted as a micro-op for the :mod:`repro.uarch` core.

Components:

* :class:`AddressSpace` — region-based allocator for simulated memory;
* :class:`CodeLayout` / :class:`Function` — assigns PC ranges to app and
  kernel functions so instruction-fetch behaviour (Figure 2) emerges
  from which code actually runs;
* :class:`Runtime` — the tracing API apps program against;
* :class:`OsKernel` — network/storage/scheduler substrate emitting
  OS-tagged micro-ops (the App/OS splits of Figures 1, 2, 6, 7).
"""

from repro.machine.address_space import AddressSpace, Region
from repro.machine.codelayout import CodeLayout, Function
from repro.machine.runtime import Runtime
from repro.machine.os_model import OsKernel
from repro.machine.structures import SimHashMap, SimArray, SimRingBuffer

__all__ = [
    "AddressSpace",
    "Region",
    "CodeLayout",
    "Function",
    "Runtime",
    "OsKernel",
    "SimHashMap",
    "SimArray",
    "SimRingBuffer",
]

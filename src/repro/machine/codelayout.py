"""Code layout: mapping functions to simulated PC ranges.

Instruction-cache behaviour (Figure 2) is driven entirely by *which PCs
execute*.  Every application/kernel function registers here and receives
a contiguous PC range whose size reflects the amount of machine code the
real counterpart executes — multi-hundred-KB paths for managed runtimes,
interpreters, and the kernel network stack; a few KB for dense numeric
kernels.

Two code-locality classes model how compiled control flow walks a
function body:

* ``"loop"`` — execution repeatedly walks the same short region from the
  entry (dense inner loops): a tiny resident I-footprint and highly
  predictable branches.
* ``"scatter"`` — execution enters at the top but then jumps between
  basic blocks spread across the whole body (branchy request-handling
  code, inlined library calls, interpreter dispatch): the I-footprint
  is the full function and branch targets are hard to predict.
"""

from __future__ import annotations

from dataclasses import dataclass

APP_CODE_BASE = 0x0040_0000
OS_CODE_BASE = 0x8000_0000
_CODE_WINDOW = 0x4000_0000  # 1 GB per code region — far beyond any footprint


@dataclass(frozen=True)
class Function:
    """A function (or fused hot path) occupying [base, base+size) PCs."""

    name: str
    base: int
    size: int
    os: bool = False
    locality: str = "scatter"  # 'loop' or 'scatter'
    bb_mean: int = 8  # mean basic-block length in micro-ops
    hot_fraction: float = 0.125  # share of the body holding the hot paths

    def __post_init__(self) -> None:
        if self.size < 64:
            raise ValueError(f"function {self.name!r} smaller than a cache line")
        if self.locality not in ("loop", "scatter"):
            raise ValueError(f"unknown locality {self.locality!r}")


class CodeLayout:
    """Allocates PC ranges; one instance per workload."""

    def __init__(self, asid: int | None = None) -> None:
        from repro.machine.address_space import _default_asid, _ASID_SHIFT

        self.asid = _default_asid if asid is None else asid
        offset = self.asid << _ASID_SHIFT
        self._app_base = APP_CODE_BASE + offset
        self._os_base = OS_CODE_BASE + offset
        self._app_cursor = self._app_base
        self._os_cursor = self._os_base
        self._functions: dict[str, Function] = {}

    def function(
        self,
        name: str,
        size: int,
        os: bool = False,
        locality: str = "scatter",
        bb_mean: int = 8,
        hot_fraction: float = 0.125,
    ) -> Function:
        """Register a function of ``size`` bytes of code."""
        if name in self._functions:
            raise ValueError(f"function {name!r} already registered")
        if size < 64:
            raise ValueError(f"function {name!r} smaller than a cache line")
        size = (size + 63) & ~63  # line-align sizes
        if os:
            base = self._os_cursor
            self._os_cursor += size
            if self._os_cursor > self._os_base + _CODE_WINDOW:
                raise MemoryError("OS code region exhausted")
        else:
            base = self._app_cursor
            self._app_cursor += size
            if self._app_cursor > self._app_base + _CODE_WINDOW:
                raise MemoryError("application code region exhausted")
        fn = Function(name, base, size, os, locality, bb_mean, hot_fraction)
        self._functions[name] = fn
        return fn

    def get(self, name: str) -> Function:
        return self._functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def app_code_bytes(self) -> int:
        return self._app_cursor - self._app_base

    def os_code_bytes(self) -> int:
        return self._os_cursor - self._os_base

    def functions(self) -> list[Function]:
        return list(self._functions.values())

"""Operating-system substrate.

Scale-out workloads spend a significant share of their time in the
kernel (Figure 1's OS components), almost all of it in the network
subsystem (§4.4: "OS-level data sharing is dominated by the network
subsystem").  This module models the kernel paths the workloads
exercise:

* a TCP/IP send/receive path with real payload copies between user
  buffers and a rotating skb pool, per-packet header work, and NIC ring
  updates (the ring indices and socket table are *shared* kernel
  structures — the source of OS read-write sharing in Figure 6);
* a VFS + page-cache + block path whose backing store is the paper's
  iSCSI RAM-disk rig (§3.4): misses cost kernel instructions and DMA
  fills, never a disk-latency stall;
* a scheduler/context-switch path.

Kernel functions get code footprints in the OS PC region sized like the
corresponding Linux paths, so OS instruction-miss behaviour (Figure 2's
OS bars) emerges from which paths a workload drives.
"""

from __future__ import annotations

from repro.machine.address_space import AddressSpace
from repro.machine.codelayout import CodeLayout, Function
from repro.machine.runtime import Runtime

_LINE = 64
_MSS = 1448  # TCP payload per packet
_PAGE = 4096

_KERNEL_CODE_PLAN: list[tuple[str, int, str, int]] = [
    # (name, code bytes, locality, mean basic-block length)
    ("sys_entry", 8 * 1024, "loop", 10),
    ("sock_syscall", 48 * 1024, "scatter", 8),
    ("tcp_tx", 160 * 1024, "scatter", 8),
    ("tcp_rx", 160 * 1024, "scatter", 8),
    ("ip_stack", 96 * 1024, "scatter", 8),
    ("nic_driver", 80 * 1024, "scatter", 9),
    ("softirq", 48 * 1024, "scatter", 8),
    ("vfs", 112 * 1024, "scatter", 8),
    ("page_cache", 64 * 1024, "scatter", 9),
    ("block_layer", 96 * 1024, "scatter", 8),
    ("iscsi_initiator", 64 * 1024, "scatter", 8),
    ("scheduler", 72 * 1024, "scatter", 9),
    ("copy_routines", 8 * 1024, "loop", 12),
]


class OsKernel:
    """Kernel substrate shared by all threads of a workload."""

    def __init__(self, space: AddressSpace, layout: CodeLayout, skb_pool: int = 256) -> None:
        self.space = space
        self.layout = layout
        self.fns: dict[str, Function] = {
            name: layout.function(f"kernel.{name}", size, os=True,
                                  locality=locality, bb_mean=bb)
            for name, size, locality, bb in _KERNEL_CODE_PLAN
        }
        # Shared kernel data structures (written by every core).
        self.sock_table = space.alloc(64 * 1024, "os", align=_LINE)
        self.tx_ring = space.alloc(skb_pool * 16, "io", align=_LINE)
        self.rx_ring = space.alloc(skb_pool * 16, "io", align=_LINE)
        self.stats_block = space.alloc(4 * _LINE, "os", align=_LINE)
        # Rotating skb pool: big enough that payload staging misses caches.
        self._skb_pool_base = space.alloc(skb_pool * 2048, "io", align=_LINE)
        self._skb_pool_slots = skb_pool
        self._skb_next = 0
        self._tx_index = 0
        self._rx_index = 0
        # Page cache: file_id -> {page_number: simulated page address},
        # bounded like the real thing — the LRU page is reclaimed (its
        # simulated frame recycled) when the cache is full.
        self._page_cache: dict[int, dict[int, int]] = {}
        self._page_lru: dict[tuple[int, int], None] = {}
        self._free_frames: list[int] = []
        self.page_cache_capacity = 32_768  # 128 MB of cached file data
        self.pages_cached = 0
        self.pages_evicted = 0
        self.page_cache_hits = 0
        self.page_cache_misses = 0
        self.packets_sent = 0
        self.packets_received = 0

    def warm_ranges(self) -> list[tuple[int, int]]:
        """Kernel structures resident at steady state (skb slab, rings,
        socket table) — installed by the functional warmup."""
        return [
            (self._skb_pool_base, self._skb_pool_slots * 2048),
            (self.tx_ring, self._skb_pool_slots * 16),
            (self.rx_ring, self._skb_pool_slots * 16),
            (self.sock_table, 64 * 1024),
            (self.stats_block, 4 * _LINE),
        ]

    # -- internals ---------------------------------------------------------
    NUM_QUEUES = 4  # multi-queue NIC with RSS (§3: Broadcom server NICs)

    def _next_skb(self, tid: int = 0) -> int:
        """Per-CPU skb slab slot: cores recycle their own buffers."""
        queue = tid % self.NUM_QUEUES
        per_queue = max(1, self._skb_pool_slots // self.NUM_QUEUES)
        index = self._skb_next
        self._skb_next += 1
        slot = queue * per_queue + (index % per_queue)
        return self._skb_pool_base + slot * 2048

    def _queue_base(self, ring: int, tid: int) -> int:
        """Per-queue descriptor region of a multi-queue NIC ring."""
        per_queue = max(_LINE * 4, (self._skb_pool_slots * 16) // self.NUM_QUEUES)
        return ring + (tid % self.NUM_QUEUES) * per_queue

    def _socket_entry(self, sock_id: int) -> int:
        return self.sock_table + (sock_id % 1024) * _LINE

    def _tx_descriptor(self, rt: Runtime) -> None:
        """Post a TX descriptor and bump this queue's producer index."""
        base = self._queue_base(self.tx_ring, rt.tid)
        slot = rt.store(base + _LINE + (self._tx_index % 14) * 16)
        rt.store(base, (slot,))  # per-queue producer index
        self._tx_index += 1

    def _rx_descriptor(self, rt: Runtime) -> int:
        base = self._queue_base(self.rx_ring, rt.tid)
        token = rt.load(base + _LINE + (self._rx_index % 14) * 16)
        rt.store(base, (token,))  # per-queue consumer index
        self._rx_index += 1
        return token

    def _bump_stats(self, rt: Runtime) -> None:
        """Global protocol counters, updated in batches (per-CPU counters
        fold into the shared SNMP block periodically)."""
        if (self.packets_sent + self.packets_received) % 16 == 0:
            token = rt.load(self.stats_block)
            rt.store(self.stats_block, (token,))

    # -- network -----------------------------------------------------------
    def send(self, rt: Runtime, nbytes: int, payload_base: int | None = None,
             sock_id: int = 0) -> None:
        """``write()`` on a socket: syscall, TCP segmentation, copies, NIC."""
        with rt.frame(self.fns["sys_entry"]):
            rt.alu(n=4)
        with rt.frame(self.fns["sock_syscall"]):
            sock = rt.load(self._socket_entry(sock_id))
            rt.alu((sock,), n=3)
            remaining = nbytes
            seg_offset = 0
            while remaining > 0:
                seg = min(remaining, _MSS)
                skb = self._next_skb(rt.tid)
                with rt.frame(self.fns["tcp_tx"]):
                    rt.alu((sock,), n=6)  # header construction, cwnd checks
                    rt.store(self._socket_entry(sock_id), (sock,))
                    with rt.frame(self.fns["copy_routines"]):
                        if payload_base is not None:
                            rt.copy(payload_base + seg_offset, skb, seg)
                        else:
                            rt.scan(skb, seg, write=True, work_per_line=0)
                    with rt.frame(self.fns["ip_stack"]):
                        rt.alu(n=8)
                        rt.store(skb)  # prepend headers
                with rt.frame(self.fns["nic_driver"]):
                    self._tx_descriptor(rt)
                self.packets_sent += 1
                remaining -= seg
                seg_offset += seg
            self._bump_stats(rt)

    def sendfile(self, rt: Runtime, nbytes: int, sock_id: int = 0) -> None:
        """Zero-copy send (``sendfile()``): per-segment protocol work and
        descriptor posting only — the NIC DMAs the payload straight out
        of the page cache, so the CPU never touches the bytes."""
        with rt.frame(self.fns["sys_entry"]):
            rt.alu(n=4)
        with rt.frame(self.fns["sock_syscall"]):
            sock = rt.load(self._socket_entry(sock_id))
            rt.alu((sock,), n=3)
            remaining = nbytes
            while remaining > 0:
                seg = min(remaining, _MSS)
                with rt.frame(self.fns["tcp_tx"]):
                    rt.alu((sock,), n=8)
                    rt.store(self._socket_entry(sock_id), (sock,))
                    with rt.frame(self.fns["ip_stack"]):
                        rt.alu(n=8)
                with rt.frame(self.fns["nic_driver"]):
                    self._tx_descriptor(rt)
                self.packets_sent += 1
                remaining -= seg
            self._bump_stats(rt)

    def recv(self, rt: Runtime, nbytes: int, into_base: int | None = None,
             sock_id: int = 0) -> None:
        """Receive path: softirq + driver + TCP + copy-to-user."""
        with rt.frame(self.fns["softirq"]):
            rt.alu(n=4)
            with rt.frame(self.fns["nic_driver"]):
                self._rx_descriptor(rt)
        remaining = nbytes
        offset = 0
        with rt.frame(self.fns["sock_syscall"]):
            sock = rt.load(self._socket_entry(sock_id))
            while remaining > 0:
                seg = min(remaining, _MSS)
                skb = self._next_skb(rt.tid)
                with rt.frame(self.fns["tcp_rx"]):
                    rt.alu((sock,), n=6)
                    rt.store(self._socket_entry(sock_id), (sock,))
                    with rt.frame(self.fns["copy_routines"]):
                        if into_base is not None:
                            rt.copy(skb, into_base + offset, seg)
                        else:
                            rt.scan(skb, seg, write=False, work_per_line=0)
                remaining -= seg
                offset += seg
                self.packets_received += 1
            self._bump_stats(rt)

    # -- storage (iSCSI RAM-disk, §3.4) -------------------------------------
    def read_file(self, rt: Runtime, file_id: int, offset: int, nbytes: int,
                  into_base: int | None = None) -> list[int]:
        """VFS read through the page cache; misses go to the RAM-disk.

        Returns the simulated page addresses covering the range (apps use
        them to address file contents directly, mmap-style)."""
        pages = self._page_cache.setdefault(file_id, {})
        first = offset // _PAGE
        last = (offset + max(nbytes, 1) - 1) // _PAGE
        result: list[int] = []
        with rt.frame(self.fns["sys_entry"]):
            rt.alu(n=4)
        with rt.frame(self.fns["vfs"]):
            rt.alu(n=6)
            for page_number in range(first, last + 1):
                with rt.frame(self.fns["page_cache"]):
                    tag = rt.alu(n=2)
                    page_addr = pages.get(page_number)
                    if page_addr is None:
                        self.page_cache_misses += 1
                        page_addr = self._claim_frame()
                        pages[page_number] = page_addr
                        self._page_lru[(file_id, page_number)] = None
                        self.pages_cached += 1
                        # Block path + iSCSI over the NIC: kernel work plus
                        # the DMA fill of the page (stores by the driver).
                        with rt.frame(self.fns["block_layer"]):
                            rt.alu((tag,), n=10)
                        with rt.frame(self.fns["iscsi_initiator"]):
                            rt.alu(n=8)
                            with rt.frame(self.fns["nic_driver"]):
                                # The page itself arrives by NIC DMA — no
                                # CPU stores; its lines are simply cold
                                # when the CPU first reads them.
                                self._rx_descriptor(rt)
                                rt.alu(n=6)
                    else:
                        self.page_cache_hits += 1
                        key = (file_id, page_number)
                        if key in self._page_lru:  # refresh recency
                            del self._page_lru[key]
                            self._page_lru[key] = None
                        rt.load(page_addr, (tag,))
                    result.append(page_addr)
            if into_base is not None:
                with rt.frame(self.fns["copy_routines"]):
                    copied = 0
                    for page_addr in result:
                        take = min(_PAGE, nbytes - copied)
                        if take <= 0:
                            break
                        rt.copy(page_addr, into_base + copied, take)
                        copied += take
        return result

    def _claim_frame(self) -> int:
        """A free page frame, reclaiming the LRU cached page if needed."""
        if self._free_frames:
            return self._free_frames.pop()
        if len(self._page_lru) >= self.page_cache_capacity:
            (old_file, old_page), _ = next(iter(self._page_lru.items()))
            del self._page_lru[(old_file, old_page)]
            frame = self._page_cache[old_file].pop(old_page)
            self.pages_evicted += 1
            return frame
        return self.space.alloc(_PAGE, "os", align=_PAGE)

    def file_cached(self, file_id: int, offset: int) -> bool:
        return offset // _PAGE in self._page_cache.get(file_id, {})

    def log_write(self, rt: Runtime, nbytes: int, payload_base: int | None = None) -> None:
        """Synchronous log write (fsync) through the block + iSCSI path.

        The RAM-disk rig absorbs the latency; the kernel instructions and
        the payload copy remain, as in the paper's I/O setup (§3.4)."""
        with rt.frame(self.fns["sys_entry"]):
            rt.alu(n=4)
        with rt.frame(self.fns["vfs"]):
            rt.alu(n=8)
            with rt.frame(self.fns["block_layer"]):
                rt.alu(n=12)
                with rt.frame(self.fns["copy_routines"]):
                    skb = self._next_skb(rt.tid)
                    if payload_base is not None:
                        rt.copy(payload_base, skb, min(nbytes, 2048))
                    else:
                        rt.scan(skb, min(nbytes, 2048), write=True, work_per_line=0)
            with rt.frame(self.fns["iscsi_initiator"]):
                rt.alu(n=10)
                with rt.frame(self.fns["nic_driver"]):
                    self._tx_descriptor(rt)

    # -- scheduling ----------------------------------------------------------
    def context_switch(self, rt: Runtime) -> None:
        """Scheduler pass + register/stack state save/restore."""
        with rt.frame(self.fns["scheduler"]):
            rt.alu(n=12)
            run_queue = self.sock_table  # reuse a shared kernel line
            token = rt.load(run_queue)
            rt.store(run_queue, (token,))

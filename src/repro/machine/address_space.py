"""Simulated address space.

A bump allocator over named regions.  Only metadata is stored — an
allocation is just a base address — so gigabyte-scale datasets cost no
host memory.  Regions separate application heap, OS structures, I/O
buffers, and stacks so that experiments can attribute traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Region:
    """A contiguous simulated address range with bump allocation."""

    name: str
    base: int
    size: int
    cursor: int = 0

    def alloc(self, nbytes: int, align: int = 8) -> int:
        if nbytes < 0:
            raise ValueError("negative allocation")
        mask = align - 1
        if align & mask:
            raise ValueError(f"alignment {align} is not a power of two")
        start = (self.cursor + mask) & ~mask
        end = start + nbytes
        if end > self.size:
            raise MemoryError(
                f"region {self.name!r} exhausted: "
                f"{end} > {self.size} bytes ({nbytes} requested)"
            )
        self.cursor = end
        return self.base + start

    @property
    def used(self) -> int:
        return self.cursor


# Region layout: generous, non-overlapping windows.
_GIB = 1 << 30

_REGION_PLAN = [
    ("heap", 0x1_0000_0000, 64 * _GIB),  # application heap / datasets
    ("os", 0x20_0000_0000, 8 * _GIB),  # kernel structures, page cache
    ("io", 0x30_0000_0000, 8 * _GIB),  # NIC rings, DMA buffers
    ("stack", 0x40_0000_0000, 1 * _GIB),  # thread stacks
]


_ASID_SHIFT = 44  # 16 TiB per address space — far beyond any region plan

_default_asid = 0


def set_default_asid(asid: int) -> None:
    """Set the address-space id given to subsequently created spaces.

    Distinct processes must not alias in the shared LLC/directory; the
    runner bumps this before building each independent per-core app
    instance (one-process-per-core workloads, §3.2/§3.3)."""
    global _default_asid
    _default_asid = asid


class AddressSpace:
    """One simulated process address space shared by a workload's threads."""

    def __init__(self, asid: int | None = None) -> None:
        self.asid = _default_asid if asid is None else asid
        offset = self.asid << _ASID_SHIFT
        self.regions: dict[str, Region] = {
            name: Region(name, base + offset, size)
            for name, base, size in _REGION_PLAN
        }

    def region(self, name: str) -> Region:
        return self.regions[name]

    def alloc(self, nbytes: int, region: str = "heap", align: int = 8) -> int:
        """Allocate ``nbytes`` in ``region``; returns the base address."""
        return self.regions[region].alloc(nbytes, align)

    def alloc_lines(self, nlines: int, region: str = "heap") -> int:
        """Allocate ``nlines`` cache lines, line-aligned."""
        return self.alloc(nlines * 64, region, align=64)

    def owner(self, addr: int) -> str | None:
        """Which region contains ``addr`` (None if unmapped)."""
        for region in self.regions.values():
            if region.base <= addr < region.base + region.size:
                return region.name
        return None

    def footprint(self) -> dict[str, int]:
        return {name: region.used for name, region in self.regions.items()}

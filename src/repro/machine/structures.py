"""Generic data structures living in simulated memory.

These are *real* structures — inserts build chains, lookups walk them —
but their nodes are simulated addresses, and every operation takes a
:class:`~repro.machine.runtime.Runtime` to emit its loads/stores, so
dependence chains and working sets match the algorithm exactly.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.machine.address_space import AddressSpace
from repro.machine.hashing import stable_hash
from repro.machine.runtime import Runtime

_LINE = 64


class SimArray:
    """A fixed-stride array of records in simulated memory."""

    def __init__(
        self,
        space: AddressSpace,
        count: int,
        elem_bytes: int,
        region: str = "heap",
    ) -> None:
        if count <= 0 or elem_bytes <= 0:
            raise ValueError("SimArray needs positive count and element size")
        self.count = count
        self.elem_bytes = elem_bytes
        self.base = space.alloc(count * elem_bytes, region, align=_LINE)

    def addr(self, index: int) -> int:
        if not 0 <= index < self.count:
            raise IndexError(f"index {index} out of range 0..{self.count - 1}")
        return self.base + index * self.elem_bytes

    def read(self, rt: Runtime, index: int, deps: Iterable[int] = ()) -> int:
        return rt.load(self.addr(index), deps)

    def write(self, rt: Runtime, index: int, deps: Iterable[int] = ()) -> int:
        return rt.store(self.addr(index), deps)

    def read_record(self, rt: Runtime, index: int, deps: Iterable[int] = ()) -> int:
        """Read a whole record (one load per cache line it spans)."""
        base = self.addr(index)
        token = 0
        deps = tuple(deps)
        for off in range(0, self.elem_bytes, _LINE):
            token = rt.load(base + off, deps)
        return token

    @property
    def nbytes(self) -> int:
        return self.count * self.elem_bytes


class SimHashMap:
    """Chained hash table: bucket array of head pointers + linked nodes.

    ``get`` emits the real probe sequence: hash computation, a load of
    the bucket head, then *dependent* loads walking the chain — the
    pointer-chasing pattern that limits scale-out MLP (§4.2).
    """

    def __init__(
        self,
        space: AddressSpace,
        nbuckets: int,
        node_bytes: int = 48,
        region: str = "heap",
    ) -> None:
        self.nbuckets = nbuckets
        self.node_bytes = node_bytes
        self._space = space
        self._region = region
        self.bucket_base = space.alloc(nbuckets * 8, region, align=_LINE)
        self._chains: dict[int, list[tuple[Hashable, int]]] = {}
        self._values: dict[Hashable, object] = {}
        self.size = 0

    def _bucket(self, key: Hashable) -> int:
        return stable_hash(key) % self.nbuckets

    def _bucket_addr(self, bucket: int) -> int:
        return self.bucket_base + bucket * 8

    def put(self, rt: Runtime, key: Hashable, value: object = None) -> None:
        bucket = self._bucket(key)
        hash_token = rt.alu(n=2)  # hash the key
        head = rt.load(self._bucket_addr(bucket), (hash_token,))
        chain = self._chains.setdefault(bucket, [])
        token = head
        for existing_key, node_addr in chain:
            token = rt.load(node_addr, (token,))
            if existing_key == key:
                rt.store(node_addr + 8, (token,))  # overwrite value field
                self._values[key] = value
                return
        node_addr = self._space.alloc(self.node_bytes, self._region)
        rt.store(node_addr, (token,))  # write key/next fields
        rt.store(node_addr + 8)  # write value field
        rt.store(self._bucket_addr(bucket), ())  # link at head
        chain.insert(0, (key, node_addr))
        self._values[key] = value
        self.size += 1

    def get(self, rt: Runtime, key: Hashable) -> object | None:
        bucket = self._bucket(key)
        hash_token = rt.alu(n=2)
        token = rt.load(self._bucket_addr(bucket), (hash_token,))
        for existing_key, node_addr in self._chains.get(bucket, ()):
            token = rt.load(node_addr, (token,))
            rt.alu((token,))  # key comparison
            if existing_key == key:
                rt.load(node_addr + 8, (token,))  # read the value field
                return self._values[key]
        return None

    def contains(self, key: Hashable) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return self.size


class SimRingBuffer:
    """A fixed-size ring of line-sized slots (NIC rings, work queues)."""

    def __init__(
        self,
        space: AddressSpace,
        slots: int,
        slot_bytes: int = _LINE,
        region: str = "io",
    ) -> None:
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.base = space.alloc(slots * slot_bytes, region, align=_LINE)
        self.head = 0
        self.tail = 0
        self._items: list[object] = []

    def _slot_addr(self, index: int) -> int:
        return self.base + (index % self.slots) * self.slot_bytes

    def push(self, rt: Runtime, item: object = None) -> None:
        rt.store(self._slot_addr(self.tail))
        rt.store(self.base)  # producer index update (shared cache line)
        self.tail += 1
        self._items.append(item)

    def pop(self, rt: Runtime) -> object | None:
        if not self._items:
            return None
        token = rt.load(self._slot_addr(self.head))
        rt.load(self.base, (token,))
        self.head += 1
        return self._items.pop(0)

    def __len__(self) -> int:
        return len(self._items)

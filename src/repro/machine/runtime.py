"""Tracing runtime: the API the mini-applications program against.

A :class:`Runtime` instance represents one software thread.  Application
code calls :meth:`load`, :meth:`store`, :meth:`alu`, :meth:`branch`,
:meth:`call`/:meth:`ret` as it executes its real algorithm; the runtime
turns those into a micro-op stream with

* PCs walked through the registered :class:`~repro.machine.codelayout.Function`
  bodies (with automatic basic-block-ending branches, so instruction
  fetch and branch prediction behave like compiled code), and
* true data dependencies expressed as micro-op sequence numbers, so the
  simulated core sees exactly the ILP/MLP the algorithm allows.

Dependency tokens: every ``load``/``alu`` returns an int token; pass
tokens as ``deps`` to later operations that consume their results.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.machine.codelayout import CodeLayout, Function
from repro.machine.hashing import stable_hash
from repro.uarch.uop import MicroOp, OpKind

_LINE = 64

#: Memoized ``stable_hash(fn.name, site) & 0x7FFFFFFF`` per static
#: branch site.  stable_hash is a pure function, so sharing the cache
#: across runs and workloads cannot change any result; the key space
#: is bounded by the static sites named in the workload sources.
_SITE_HASHES: dict[tuple[str, str], int] = {}


class Runtime:
    """Micro-op emitter for one software thread."""

    def __init__(
        self,
        layout: CodeLayout,
        tid: int = 0,
        seed: int = 0,
        main: Function | None = None,
    ) -> None:
        self.layout = layout
        self.tid = tid
        self.rng = random.Random((seed << 8) | tid)
        self._buf: list[MicroOp] = []
        self.seq = 0
        self._stack: list[tuple[Function, int]] = []
        if main is None:
            name = f"__main_t{tid}"
            main = layout.function(name, 4096, locality="loop") if name not in layout \
                else layout.get(name)
        self._fn = main
        self._offset = 0
        self._bb_left = self._sample_bb(main)
        self._os_depth = 0

    # -- internal emission ------------------------------------------------
    def _sample_bb(self, fn: Function) -> int:
        return self.rng.randrange(1, 2 * fn.bb_mean)

    def _emit(
        self,
        kind: int,
        addr: int = 0,
        deps: tuple[int, ...] = (),
        taken: bool = False,
        target: int = 0,
    ) -> int:
        fn = self._fn
        offset = self._offset
        if offset >= fn.size:
            offset = 0
        pc = fn.base + offset
        self._offset = offset + 4
        self.seq += 1
        self._buf.append(
            MicroOp(
                kind,
                pc,
                addr,
                deps,
                self.seq,
                fn.os or self._os_depth > 0,
                self.tid,
                taken,
                target,
            )
        )
        self._bb_left -= 1
        if self._bb_left <= 0:
            self._end_basic_block()
        return self.seq

    def _end_basic_block(self) -> None:
        """Emit the compiler-inserted branch that terminates a basic block.

        Branch behaviour mimics compiled code: every *static* branch PC
        has a deterministic bias (mostly-taken or mostly-not-taken) and a
        deterministic taken-target, so predictors can learn it; dynamic
        paths still vary because each execution draws its direction from
        the bias.  Taken targets land in the function's hot region most
        of the time and anywhere in the body otherwise, which makes the
        resident I-footprint scale with code size (Figure 2's mechanism).
        """
        fn = self._fn
        self._bb_left = self._sample_bb(fn) + 1  # +1 covers the branch itself
        offset = self._offset
        if offset >= fn.size:
            offset = 0
        pc = fn.base + offset
        self.seq += 1
        if fn.locality == "loop":
            # Walk a short window; jump back to the entry at its end.
            window = min(fn.size, 4096)
            if offset + 4 >= window:
                taken, target, new_offset = True, fn.base, 0
            else:
                taken, target, new_offset = False, pc + 4, offset + 4
        else:
            # Hash at 16-byte granularity: nearby block-ends behave as one
            # static branch site, which predictors can learn.
            h = ((pc >> 4) * 2654435761) & 0xFFFFFFFF
            p_taken = 0.9 if (h >> 8) & 1 else 0.1
            if self.rng.random() < p_taken:
                hot = min(fn.size, max(4096, int(fn.size * fn.hot_fraction)))
                span = hot if (h >> 9) & 3 else fn.size  # 75 % of targets hot
                line = ((h >> 11) * 40503) % (span >> 6)
                new_offset = line << 6
                taken, target = True, fn.base + new_offset
            else:
                taken, target, new_offset = False, pc + 4, offset + 4
        self._buf.append(
            MicroOp(
                OpKind.BRANCH,
                pc,
                0,
                (),
                self.seq,
                fn.os or self._os_depth > 0,
                self.tid,
                taken,
                target,
            )
        )
        self._offset = new_offset

    # -- public tracing API -------------------------------------------------
    def load(self, addr: int, deps: Iterable[int] = ()) -> int:
        """A load from simulated address ``addr``; returns its token."""
        return self._emit(OpKind.LOAD, addr, tuple(deps))

    def store(self, addr: int, deps: Iterable[int] = ()) -> int:
        return self._emit(OpKind.STORE, addr, tuple(deps))

    def alu(self, deps: Iterable[int] = (), n: int = 1, chain: bool = True) -> int:
        """``n`` ALU micro-ops.  ``chain=True`` serializes them (a true
        dependence chain); ``chain=False`` makes them independent."""
        deps = tuple(deps)
        token = 0
        for _ in range(n):
            token = self._emit(OpKind.ALU, 0, deps)
            if chain:
                deps = (token,)
        return token

    def branch(self, taken: bool, deps: Iterable[int] = (),
               site: str | None = None) -> int:
        """A data-dependent conditional branch (e.g. a comparison outcome).

        ``site`` names the static branch in the source — all executions
        of the same site share one PC (and one deterministic taken-
        target), so predictors can learn whatever bias the data has.
        Without a site, the branch is emitted at the current PC.
        """
        fn = self._fn
        if site is not None:
            # One stable_hash per *static* site, not per execution: the
            # hash is a pure function of (fn, site) and this is the
            # hottest tracing path (every data-dependent branch).
            key = (fn.name, site)
            site_hash = _SITE_HASHES.get(key)
            if site_hash is None:
                site_hash = _SITE_HASHES[key] = (
                    stable_hash(fn.name, site) & 0x7FFFFFFF)
            pc = fn.base + (site_hash % (fn.size >> 2)) * 4
            target = fn.base + ((site_hash * 40503) % (fn.size >> 6)) * _LINE
            if not taken:
                target = pc + 4
            self.seq += 1
            self._buf.append(
                MicroOp(OpKind.BRANCH, pc, 0, tuple(deps), self.seq,
                        fn.os or self._os_depth > 0, self.tid, taken, target)
            )
            return self.seq
        if taken:
            target = fn.base + self.rng.randrange(0, fn.size, _LINE)
        else:
            target = fn.base + ((self._offset + 4) % fn.size)
        return self._emit(OpKind.BRANCH, 0, tuple(deps), taken, target)

    def indirect_jump(self, selector: int, deps: Iterable[int] = ()) -> int:
        """An indirect jump whose target is chosen by a data value
        (interpreter dispatch, virtual calls).  The target varies with
        ``selector``, so the BTB cannot learn a single target per PC —
        the dominant misprediction source in interpreter-style code."""
        fn = self._fn
        line_count = fn.size >> 6
        line = (selector * 2654435761) % line_count
        target = fn.base + (line << 6)
        token = self._emit(OpKind.BRANCH, 0, tuple(deps), True, target)
        self._offset = line << 6
        return token

    def call(self, fn: Function) -> None:
        """Call ``fn``: emits the call branch and switches the PC stream."""
        self._emit(OpKind.BRANCH, 0, (), True, fn.base)
        self._stack.append((self._fn, self._offset))
        self._fn = fn
        self._offset = 0
        self._bb_left = self._sample_bb(fn)

    def ret(self) -> None:
        if not self._stack:
            raise RuntimeError("ret() with an empty call stack")
        caller, offset = self._stack.pop()
        self._emit(OpKind.BRANCH, 0, (), True, caller.base + (offset % caller.size))
        self._fn = caller
        self._offset = offset
        self._bb_left = self._sample_bb(caller)

    class _Frame:
        __slots__ = ("rt",)

        def __init__(self, rt: "Runtime") -> None:
            self.rt = rt

        def __enter__(self) -> "Runtime":
            return self.rt

        def __exit__(self, *exc) -> None:
            self.rt.ret()

    def frame(self, fn: Function) -> "Runtime._Frame":
        """``with rt.frame(fn): ...`` — call on entry, return on exit."""
        self.call(fn)
        return Runtime._Frame(self)

    class _OsScope:
        __slots__ = ("rt",)

        def __init__(self, rt: "Runtime") -> None:
            self.rt = rt

        def __enter__(self) -> "Runtime":
            return self.rt

        def __exit__(self, *exc) -> None:
            self.rt._os_depth -= 1

    def os_mode(self) -> "Runtime._OsScope":
        """Tag emitted micro-ops as OS regardless of the current function."""
        self._os_depth += 1
        return Runtime._OsScope(self)

    # -- bulk helpers --------------------------------------------------------
    def scan(
        self,
        base: int,
        nbytes: int,
        stride: int = _LINE,
        write: bool = False,
        work_per_line: int = 2,
        deps: Iterable[int] = (),
    ) -> int:
        """Sequential scan over a range (prefetcher-friendly traffic).

        Emits one memory op per ``stride`` bytes plus ``work_per_line``
        independent ALU ops; returns the last token."""
        deps = tuple(deps)
        token = 0
        emit = self._emit
        mem_kind = OpKind.STORE if write else OpKind.LOAD
        for offset in range(0, nbytes, stride):
            token = emit(mem_kind, base + offset, deps)
            if work_per_line:
                self.alu(n=work_per_line, chain=False)
        return token

    def copy(self, src: int, dst: int, nbytes: int, parallelism: int = 2) -> None:
        """Line-by-line memcpy: load src line, store dst line.

        Real copy loops bound their outstanding loads by the unrolling
        the compiler chose and the surrounding bookkeeping; ``parallelism``
        caps the number of independent load chains."""
        parallelism = max(1, parallelism)
        chains = [0] * parallelism
        index = 0
        for offset in range(0, nbytes, _LINE):
            parent = chains[index % parallelism]
            token = self._emit(OpKind.LOAD, src + offset,
                               (parent,) if parent else ())
            self._emit(OpKind.STORE, dst + offset, (token,))
            chains[index % parallelism] = token
            index += 1

    def pointer_chase(self, addrs: Iterable[int], work_per_hop: int = 1) -> int:
        """Dependent loads: each address load depends on the previous one
        (an index/list walk where the next node comes from the current)."""
        token = 0
        for addr in addrs:
            deps = (token,) if token else ()
            token = self._emit(OpKind.LOAD, addr, deps)
            if work_per_hop:
                self.alu((token,), n=work_per_hop)
        return token

    # -- trace extraction ------------------------------------------------
    def take(self) -> list[MicroOp]:
        """Return and clear the emitted micro-ops."""
        buf = self._buf
        self._buf = []
        return buf

    def pending(self) -> int:
        return len(self._buf)

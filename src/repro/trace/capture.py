"""Trace capture: drain a workload's streams once per trace key.

A captured trace is everything replay needs to reproduce a live run's
counters on a fresh :class:`~repro.uarch.hierarchy.MemoryHierarchy`:

* the functional-warming **fill ranges** (code footprint plus the
  kernel's and app's steady-state data ranges);
* the **warm stream** — the short execution replay that orders LRU
  recency and trains the prefetchers before measurement;
* the **measurement stream(s)** — the windowed micro-op trace the core
  actually times.

The measurement stream depends only on :class:`TraceKey` — workload,
member, seed, window/warm budgets, thread count, and fault plan — and
on no machine parameter, which is what makes capture-once /
replay-many sound.  The key's fingerprint is computed by the same
canonicalization machinery as :func:`repro.core.sweep.config_fingerprint`
and folds in :data:`~repro.trace.codec.TRACE_SCHEMA`.

Capture is the *only* stage allowed to run unbounded app code, so the
measurement drain runs under the runaway-trace watchdog
(:func:`repro.faults.watchdog.guard_trace`); replay is guard-free.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import guard_trace, trace_budget
from repro.trace.codec import TRACE_SCHEMA, EncodedStream, encode_stream

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.apps.base import ServerApp

__all__ = ["TraceKey", "CapturedTrace", "capture", "fill_ranges_for"]


@dataclass(frozen=True)
class TraceKey:
    """Everything the captured streams depend on — and nothing else.

    Machine parameters are deliberately absent: that is the invariant
    the whole pipeline rests on, and the replay-equivalence tests
    enforce it.  ``member`` selects one benchmark of a synthetic group
    (``parsec-cpu:blackscholes``); ``threads`` is the number of
    captured measurement streams (1 everywhere today — SMT and chip
    runs interleave thread generation with core timing and therefore
    stay live, see :mod:`repro.trace.live`).
    """

    workload: str
    member: str | None = None
    seed: int = 7
    window_uops: int = 100_000
    warm_uops: int = 40_000
    threads: int = 1
    fault_plan: FaultPlan | None = None
    #: When set, the streams drain one fleet op class (``read``/
    #: ``update``/...) through the app's
    #: :meth:`~repro.apps.base.ServerApp.cluster_op_stream` instead of
    #: the mixed serve loop — the capture side of cluster cost
    #: calibration (:mod:`repro.cluster.calibrate`).
    op_class: str | None = None

    @classmethod
    def from_config(cls, name: str, config,
                    member: str | None = None) -> "TraceKey":
        """The key for one workload under a ``RunConfig`` (params dropped)."""
        return cls(
            workload=name,
            member=member,
            seed=config.seed,
            window_uops=config.window_uops,
            warm_uops=config.warm_uops,
            fault_plan=config.fault_plan,
        )

    def label(self) -> str:
        """Human-readable run label (``group:member`` for group runs,
        ``workload@op`` for calibration captures)."""
        if self.op_class is not None:
            return f"{self.workload}@{self.op_class}"
        if self.member is None:
            return self.workload
        return f"{self.workload}:{self.member}"

    def fingerprint(self) -> str:
        """Canonical hex digest; the store filename and memo key.

        Built by the same structural canonicalization as the result
        fingerprint, with the codec schema folded in so traces encoded
        by an incompatible build can never be served.
        """
        # Imported lazily: core.sweep folds TRACE_SCHEMA into result
        # fingerprints, so a module-level import here would be a cycle.
        from repro.core.sweep import canonical

        document = {"schema": TRACE_SCHEMA, "key": canonical(self)}
        text = json.dumps(document, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CapturedTrace:
    """One captured workload execution, ready to replay or persist."""

    fingerprint: str
    label: str
    #: ``(base, nbytes)`` ranges functionally installed into the LLC
    #: before the warm stream replays (code + steady-state data).
    fill_ranges: tuple[tuple[int, int], ...]
    warm: EncodedStream
    streams: tuple[EncodedStream, ...]
    #: JSON-safe capture provenance (key fields, uop counts) — shown by
    #: ``python -m repro trace ls`` without decoding the payload.
    meta: dict = field(default_factory=dict)

    def total_uops(self) -> int:
        """Warm plus measurement micro-ops across every stream."""
        return len(self.warm) + sum(len(s) for s in self.streams)

    def window_uops(self) -> int:
        """Measurement micro-ops across every stream."""
        return sum(len(s) for s in self.streams)

    def nbytes(self) -> int:
        """Encoded payload size across every stream."""
        return self.warm.nbytes() + sum(s.nbytes() for s in self.streams)


def fill_ranges_for(app: "ServerApp") -> tuple[tuple[int, int], ...]:
    """The functional-warming fill set of ``app``, as (base, nbytes).

    Every registered function's code, the kernel's steady-state ranges,
    and the app's own :meth:`~repro.apps.base.ServerApp.warm_ranges`.
    Must be snapshotted *before* any stream is drained: tracing a
    thread lazily registers its entry function in the code layout, and
    live warming never sees that function either — the snapshot keeps
    replayed warming byte-identical to live warming.
    """
    ranges = [(fn.base, fn.size) for fn in app.layout.functions()]
    ranges.extend(app.kernel.warm_ranges())
    ranges.extend(app.warm_ranges())
    return tuple((int(base), int(nbytes)) for base, nbytes in ranges)


def build_app_for(key: TraceKey) -> "ServerApp":
    """Construct (and fault-attach) the app instance a key describes."""
    from repro.core.workloads import REGISTRY, build_app

    if key.member is not None:
        spec = REGISTRY[key.workload]
        app_cls = type(spec.factory(0))
        app = app_cls(seed=key.seed, member=key.member)
    else:
        app = build_app(key.workload, seed=key.seed)
    if key.fault_plan is not None:
        app.attach_faults(FaultInjector(key.fault_plan))
    return app


def capture(key: TraceKey) -> tuple[CapturedTrace, "ServerApp"]:
    """Capture one workload execution.

    Returns the encoded trace *and* the live app that produced it —
    in-process callers (the faults figure) consume the app's service
    metrics, which a store-restored trace cannot supply.

    Stream order matters and mirrors the live runner exactly: fill
    ranges first (see :func:`fill_ranges_for`), then the warm stream,
    then each measurement stream, all from one app instance whose RNG
    and dataset state evolve across the drain.
    """
    if key.op_class is not None:
        return _capture_op_class(key)
    app = build_app_for(key)
    fill_ranges = fill_ranges_for(app)
    warm = encode_stream(app.trace(0, key.warm_uops))
    label = key.label()
    budget = key.window_uops // key.threads if key.threads > 1 \
        else key.window_uops
    streams = tuple(
        encode_stream(guard_trace(app.trace(tid, budget),
                                  trace_budget(budget), label))
        for tid in range(key.threads)
    )
    captured = CapturedTrace(
        fingerprint=key.fingerprint(),
        label=label,
        fill_ranges=fill_ranges,
        warm=warm,
        streams=streams,
        meta={
            "workload": key.workload,
            "member": key.member,
            "seed": key.seed,
            "window_uops": key.window_uops,
            "warm_uops": key.warm_uops,
            "threads": key.threads,
            "fault_events": (len(key.fault_plan.events)
                             if key.fault_plan is not None else 0),
        },
    )
    return captured, app


def _capture_op_class(key: TraceKey) -> tuple[CapturedTrace, "ServerApp"]:
    """Capture one fleet op class for cost calibration.

    Single-stream by construction (one thread, no fault plan — degraded
    paths are op classes of their own here) so the columnar fastpath
    replays it.  Request boundaries are recorded into the trace's meta
    (``request_uops``) for proportional cycle attribution.
    """
    if key.fault_plan is not None:
        raise ValueError("op-class capture takes no fault plan; degraded "
                         "modes are separate op classes")
    if key.threads != 1:
        raise ValueError("op-class capture is single-threaded")
    app = build_app_for(key)
    # Degraded-path code must be registered before the layout snapshot
    # so all five op-class traces of one workload see one address space.
    app.prepare_cluster_ops()
    fill_ranges = fill_ranges_for(app)
    warm = encode_stream(app.cluster_op_stream(0, key.op_class,
                                               key.warm_uops))
    label = key.label()
    boundaries: list[int] = []
    stream = encode_stream(guard_trace(
        app.cluster_op_stream(0, key.op_class, key.window_uops, boundaries),
        trace_budget(key.window_uops), label))
    captured = CapturedTrace(
        fingerprint=key.fingerprint(),
        label=label,
        fill_ranges=fill_ranges,
        warm=warm,
        streams=(stream,),
        meta={
            "workload": key.workload,
            "member": key.member,
            "seed": key.seed,
            "window_uops": key.window_uops,
            "warm_uops": key.warm_uops,
            "threads": key.threads,
            "fault_events": 0,
            "op_class": key.op_class,
            "request_uops": boundaries,
        },
    )
    return captured, app

"""Timing replay: feed a captured trace to a core, guard-free.

Replay is the per-configuration half of the pipeline: build a fresh
:class:`~repro.uarch.hierarchy.MemoryHierarchy` for the machine
parameters under test, functionally warm it from the captured fill
ranges and warm stream, then run the core over the decoded measurement
stream(s).  Because the decoded stream is field-identical to the live
one (see :mod:`repro.trace.codec`), the resulting
:class:`~repro.uarch.core.CoreResult` counters match a live run
byte-for-byte — the replay-equivalence tests pin this for every
workload in the registry.

No watchdog here: the stream length was bounded at capture time, so
wrapping replay in a guard would only add per-uop overhead to the hot
path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, List, Protocol

from repro.uarch.core import Core, CoreResult
from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.params import MachineParams
from repro.uarch.uop import MicroOp

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.trace.capture import CapturedTrace

__all__ = ["TraceSource", "ReplaySource", "fill_lines",
           "functional_replay", "replay_trace"]


class TraceSource(Protocol):
    """What a core-feeding stage needs from any trace provider.

    Implemented by :class:`ReplaySource` (decoded captures) and
    :class:`repro.trace.live.LiveSource` (generation-entangled runs);
    the runner is indifferent to which it holds.
    """

    def warm_into(self, hierarchy: MemoryHierarchy) -> None:
        """Functionally warm ``hierarchy`` for this trace."""

    def streams(self) -> List[Iterator[MicroOp]]:
        """One measurement micro-op iterator per hardware thread."""


def fill_lines(hierarchy: MemoryHierarchy,
               ranges: Iterable[tuple[int, int]]) -> None:
    """Install every line of ``(base, nbytes)`` ranges into the LLC."""
    fill = hierarchy.llc.fill
    for base, nbytes in ranges:
        for addr in range(base, base + nbytes, 64):
            fill(addr)


def functional_replay(hierarchy: MemoryHierarchy,
                      uops: Iterable[MicroOp]) -> None:
    """Replay ``uops`` through the hierarchy without core timing.

    Orders LRU recency, fills L1/L2/TLBs, and trains the prefetcher
    tables — one instruction-fetch access per new code line plus the
    load/store data accesses, exactly the warming walk the live runner
    performs.
    """
    last_line = -1
    access = hierarchy.access
    for uop in uops:
        line = uop.pc >> 6
        if line != last_line:
            last_line = line
            access(uop.pc, False, True, uop.is_os)
        kind = uop.kind
        if kind == 1:  # LOAD
            access(uop.addr, False, False, uop.is_os)
        elif kind == 2:  # STORE
            access(uop.addr, True, False, uop.is_os)


class ReplaySource:
    """A :class:`TraceSource` over one :class:`CapturedTrace`."""

    def __init__(self, captured: "CapturedTrace") -> None:
        self.captured = captured

    def warm_into(self, hierarchy: MemoryHierarchy) -> None:
        """Replay the captured fill ranges and warm stream."""
        fill_lines(hierarchy, self.captured.fill_ranges)
        functional_replay(hierarchy, self.captured.warm.decode())

    def streams(self) -> List[Iterator[MicroOp]]:
        """Fresh decode iterators, one per captured thread stream."""
        return [stream.decode() for stream in self.captured.streams]


def replay_trace(captured: "CapturedTrace",
                 params: MachineParams) -> CoreResult:
    """One timing measurement: warm a fresh hierarchy, run the core."""
    source = ReplaySource(captured)
    hierarchy = MemoryHierarchy(params)
    source.warm_into(hierarchy)
    core = Core(params, hierarchy)
    return core.run(source.streams())

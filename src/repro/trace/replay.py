"""Timing replay: feed a captured trace to a core, guard-free.

Replay is the per-configuration half of the pipeline: build a fresh
:class:`~repro.uarch.hierarchy.MemoryHierarchy` for the machine
parameters under test, functionally warm it from the captured fill
ranges and warm stream, then run the core over the measurement
stream(s).

Two engines execute the measurement window:

* the **columnar** fast path (:func:`repro.uarch.fastpath.replay_columns`)
  reads the encoded columns positionally through a
  :class:`~repro.trace.columns.ColumnBatch` — no per-uop ``MicroOp``
  objects, no generator resumes.  Selected for the common sweep shape:
  one captured stream, no SMT, no fault plan;
* the **general** loop (:meth:`repro.uarch.core.Core.run`) over decoded
  streams handles everything else (SMT pairs, fault-injected captures).

Both produce byte-identical :class:`~repro.uarch.core.CoreResult`
counters — the replay-equivalence tests pin fast-vs-general and
replay-vs-live for every workload in the registry.  Engine selection is
a pure function of the run configuration (:func:`replay_path_for`) and
participates in :func:`repro.core.sweep.config_fingerprint`, so cached
results always record which engine produced them.

No watchdog here: the stream length was bounded at capture time, so
wrapping replay in a guard would only add per-uop overhead to the hot
path.
"""

from __future__ import annotations

import gc
from typing import TYPE_CHECKING, Iterable, Iterator, List, Protocol

from repro.trace.columns import ColumnBatch, batch_for
from repro.uarch.core import Core, CoreResult
from repro.uarch.fastpath import replay_columns
from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.params import MachineParams
from repro.uarch.uop import MicroOp

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.trace.capture import CapturedTrace

__all__ = ["TraceSource", "ReplaySource", "fill_lines",
           "functional_replay", "functional_replay_batch",
           "replay_trace", "selected_replay_path", "replay_path_for"]


class TraceSource(Protocol):
    """What a core-feeding stage needs from any trace provider.

    Implemented by :class:`ReplaySource` (decoded captures) and
    :class:`repro.trace.live.LiveSource` (generation-entangled runs);
    the runner is indifferent to which it holds.
    """

    def warm_into(self, hierarchy: MemoryHierarchy) -> None:
        """Functionally warm ``hierarchy`` for this trace."""

    def streams(self) -> List[Iterator[MicroOp]]:
        """One measurement micro-op iterator per hardware thread."""


def fill_lines(hierarchy: MemoryHierarchy,
               ranges: Iterable[tuple[int, int]]) -> None:
    """Install every line of ``(base, nbytes)`` ranges into the LLC.

    The line size comes from the LLC being warmed — a 128-byte-line
    hierarchy must be filled at 128-byte granularity, not a hardcoded
    64 (walking such a hierarchy with a 64-byte step would double-count
    every line's LRU touch and halve the effective reach of the walk).
    """
    llc = hierarchy.llc
    for base, nbytes in ranges:
        llc.install_span(base, nbytes)


def functional_replay(hierarchy: MemoryHierarchy,
                      uops: Iterable[MicroOp]) -> None:
    """Replay ``uops`` through the hierarchy without core timing.

    Orders LRU recency, fills L1/L2/TLBs, and trains the prefetcher
    tables — one instruction-fetch access per new code line plus the
    load/store data accesses, exactly the warming walk the live runner
    performs.  The code-line granularity is the hierarchy's own
    ``line_bytes`` (the same shift the core's fetch stage uses), not a
    hardcoded 64.
    """
    last_line = -1
    line_shift = hierarchy.params.line_bytes.bit_length() - 1
    access = hierarchy.access_timed
    for uop in uops:
        line = uop.pc >> line_shift
        if line != last_line:
            last_line = line
            access(uop.pc, False, True, uop.is_os)
        kind = uop.kind
        if kind == 1:  # LOAD
            access(uop.addr, False, False, uop.is_os)
        elif kind == 2:  # STORE
            access(uop.addr, True, False, uop.is_os)


def functional_replay_batch(hierarchy: MemoryHierarchy,
                            batch: ColumnBatch) -> None:
    """:func:`functional_replay`, batched over a column view.

    Access-for-access identical to replaying the decoded stream — same
    per-new-line instruction fetch, same load/store walk — with the
    per-uop object construction and attribute loads hoisted out and the
    hierarchy's own batched walk handling the per-access dispatch.
    """
    line_shift = hierarchy.params.line_bytes.bit_length() - 1
    hierarchy.warm_batch(batch.access_ops(line_shift))


class ReplaySource:
    """A :class:`TraceSource` over one :class:`CapturedTrace`."""

    def __init__(self, captured: "CapturedTrace") -> None:
        self.captured = captured

    def warm_into(self, hierarchy: MemoryHierarchy) -> None:
        """Replay the captured fill ranges and warm stream."""
        fill_lines(hierarchy, self.captured.fill_ranges)
        functional_replay_batch(hierarchy, batch_for(self.captured.warm))

    def streams(self) -> List[Iterator[MicroOp]]:
        """Fresh decode iterators, one per captured thread stream."""
        return [stream.decode() for stream in self.captured.streams]


def selected_replay_path(captured: "CapturedTrace",
                         params: MachineParams) -> str:
    """Which engine :func:`replay_trace` will use: ``columnar`` or ``general``.

    The columnar loop implements exactly the single-thread, no-budget
    slice of the core model, so it is selected only when the capture has
    one measurement stream, the machine runs one hardware thread, and
    the capture carries no injected faults.  A capture whose provenance
    is missing (no ``fault_events`` in ``meta``) conservatively takes
    the general loop.
    """
    if (
        len(captured.streams) == 1
        and params.smt_threads == 1
        and captured.meta.get("fault_events") == 0
    ):
        return "columnar"
    return "general"


def replay_path_for(kind: str, config) -> str:
    """Engine selection as a function of a sweep cell's configuration.

    Mirrors :func:`selected_replay_path` for fingerprinting: ``kind`` is
    the :func:`repro.core.sweep.config_fingerprint` cell kind.  Only the
    trace-driven single-stream kinds (``single``, ``member``) can take
    the columnar engine; SMT and chip cells time live generation and
    always use the general loop.
    """
    if (
        kind in ("single", "member")
        and config.fault_plan is None
        and config.params.smt_threads == 1
    ):
        return "columnar"
    return "general"


def replay_trace(captured: "CapturedTrace",
                 params: MachineParams) -> CoreResult:
    """One timing measurement: warm a fresh hierarchy, run the core.

    The cyclic collector is paused for the duration of the measurement:
    replay allocates no reference cycles (cache dicts, deques, and the
    memoized column lists are all acyclic), but its steady allocation
    rate triggers generation-2 collections whose full-heap scans walk
    the multi-million-element memoized trace columns — measured at
    roughly a third of replay wall time, collecting nothing.
    """
    source = ReplaySource(captured)
    hierarchy = MemoryHierarchy(params)
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        source.warm_into(hierarchy)
        core = Core(params, hierarchy)
        if selected_replay_path(captured, params) == "columnar":
            return replay_columns(core, batch_for(captured.streams[0]))
        return core.run(source.streams())
    finally:
        if gc_was_enabled:
            gc.enable()

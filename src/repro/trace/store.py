"""Persistent on-disk trace store: one binary container per fingerprint.

Captured traces are deterministic given their key, so a trace keyed by
:meth:`~repro.trace.capture.TraceKey.fingerprint` never goes stale —
sweeps and repeated figure regeneration skip every capture they have
already performed, across process invocations.  Layout::

    ~/.cache/repro/traces-v<TRACE_SCHEMA>/<fingerprint>.trace

The root follows the result store's conventions exactly
(``REPRO_CACHE_DIR`` override, XDG fallback), and so does the failure
discipline: writes are atomic (temp file + ``os.replace``), and a
container that fails to parse, fails its checksum, or carries the
wrong fingerprint is **quarantined** into ``corrupt/`` with a
``.reason`` sidecar — evidence for ``python -m repro doctor``, never a
silent recompute-over.

Container format (all integers little-endian)::

    magic      8 bytes   b"REPROTRC"
    headerlen  4 bytes   length of the JSON header
    header     JSON      schema, fingerprint, label, meta, fill
                         ranges, and per-stream column manifests
    payload    raw bytes the column arrays, concatenated in
                         manifest order
    digest     32 bytes  SHA-256 over everything above

The header carries each column's byte length, so a reader can slice
the payload without trusting anything but the (checksummed) header.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import struct
import sys
import tempfile

from repro.faults.manifest import atomic_write_json
from repro.trace.capture import CapturedTrace
from repro.trace.codec import COLUMNS, TRACE_SCHEMA, EncodedStream

__all__ = ["TraceFormatError", "TraceStore", "serialize", "deserialize"]

_MAGIC = b"REPROTRC"
_HEADER_LEN = struct.Struct("<I")
_DIGEST_BYTES = 32


class TraceFormatError(ValueError):
    """A trace container that cannot be trusted (torn, renamed, alien)."""


def _stream_manifest(name: str, stream: EncodedStream) -> dict:
    return {
        "name": name,
        "uops": len(stream),
        "columns": [
            {"name": column_name,
             "nbytes": len(column) * column.itemsize}
            for (column_name, _), column in zip(COLUMNS, stream.columns())
        ],
    }


def serialize(captured: CapturedTrace) -> bytes:
    """The binary container for one captured trace."""
    sections = [("warm", captured.warm)]
    sections += [(f"stream{i}", stream)
                 for i, stream in enumerate(captured.streams)]
    header = {
        "schema": TRACE_SCHEMA,
        "fingerprint": captured.fingerprint,
        "label": captured.label,
        "byteorder": sys.byteorder,
        "meta": captured.meta,
        "fill_ranges": [[base, nbytes]
                        for base, nbytes in captured.fill_ranges],
        "sections": [_stream_manifest(name, stream)
                     for name, stream in sections],
    }
    header_bytes = json.dumps(header, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
    parts = [_MAGIC, _HEADER_LEN.pack(len(header_bytes)), header_bytes]
    for _, stream in sections:
        parts.extend(column.tobytes() for column in stream.columns())
    body = b"".join(parts)
    return body + hashlib.sha256(body).digest()


def _decode_section(manifest: dict, payload: bytes, offset: int
                    ) -> tuple[EncodedStream, int]:
    columns: dict[str, bytes] = {}
    expected = [name for name, _ in COLUMNS]
    declared = [entry["name"] for entry in manifest["columns"]]
    if declared != expected:
        raise TraceFormatError(
            f"section {manifest.get('name')!r} declares columns "
            f"{declared}, expected {expected}")
    for entry in manifest["columns"]:
        nbytes = entry["nbytes"]
        chunk = payload[offset:offset + nbytes]
        if len(chunk) != nbytes:
            raise TraceFormatError(
                f"truncated payload in section {manifest.get('name')!r}")
        columns[entry["name"]] = chunk
        offset += nbytes
    try:
        stream = EncodedStream.from_columns(columns)
    except ValueError as exc:
        raise TraceFormatError(f"undecodable column bytes: {exc}") from exc
    if len(stream) != manifest["uops"]:
        raise TraceFormatError(
            f"section {manifest.get('name')!r} decodes to {len(stream)} "
            f"uops, header says {manifest['uops']}")
    return stream, offset


def deserialize(data: bytes) -> CapturedTrace:
    """Parse a container; raises :class:`TraceFormatError` on any defect."""
    if len(data) < len(_MAGIC) + _HEADER_LEN.size + _DIGEST_BYTES:
        raise TraceFormatError("container shorter than its fixed framing")
    if data[:len(_MAGIC)] != _MAGIC:
        raise TraceFormatError("bad magic (not a trace container)")
    body, digest = data[:-_DIGEST_BYTES], data[-_DIGEST_BYTES:]
    if hashlib.sha256(body).digest() != digest:
        raise TraceFormatError("checksum mismatch (torn or tampered write)")
    header_len, = _HEADER_LEN.unpack_from(body, len(_MAGIC))
    header_start = len(_MAGIC) + _HEADER_LEN.size
    header_bytes = body[header_start:header_start + header_len]
    if len(header_bytes) != header_len:
        raise TraceFormatError("truncated header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"unparsable header: {exc}") from exc
    if header.get("schema") != TRACE_SCHEMA:
        raise TraceFormatError(
            f"schema {header.get('schema')!r} inside the "
            f"v{TRACE_SCHEMA} store")
    if header.get("byteorder") != sys.byteorder:
        raise TraceFormatError(
            f"container written on a {header.get('byteorder')!r}-endian "
            f"host, this host is {sys.byteorder!r}-endian")
    payload = body[header_start + header_len:]
    try:
        sections = header["sections"]
        fill_ranges = tuple((int(base), int(nbytes))
                            for base, nbytes in header["fill_ranges"])
        fingerprint = header["fingerprint"]
        label = header["label"]
        meta = header.get("meta", {})
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed header fields: {exc}") from exc
    if not sections or sections[0].get("name") != "warm":
        raise TraceFormatError("first section must be the warm stream")
    offset = 0
    streams: list[EncodedStream] = []
    try:
        for manifest in sections:
            stream, offset = _decode_section(manifest, payload, offset)
            streams.append(stream)
    except (KeyError, TypeError) as exc:
        raise TraceFormatError(f"malformed section manifest: {exc}") from exc
    if offset != len(payload):
        raise TraceFormatError(
            f"{len(payload) - offset} trailing payload byte(s)")
    return CapturedTrace(
        fingerprint=fingerprint,
        label=label,
        fill_ranges=fill_ranges,
        warm=streams[0],
        streams=tuple(streams[1:]),
        meta=meta,
    )


def _atomic_write_bytes(path: pathlib.Path, data: bytes) -> None:
    """Temp file + ``os.replace``: a kill mid-write never tears."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent),
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class TraceStore:
    """A directory of fingerprint-keyed trace containers."""

    def __init__(self, root: str | pathlib.Path | None = None) -> None:
        if root is None:
            # Imported lazily: core.store imports the runner, which
            # imports the trace pipeline — a module-level import here
            # would close that cycle.
            from repro.core.store import default_cache_dir

            root = default_cache_dir()
        self.root = pathlib.Path(root)
        self.directory = self.root / f"traces-v{TRACE_SCHEMA}"
        self.corrupt_directory = self.root / "corrupt"

    def path_for(self, fingerprint: str) -> pathlib.Path:
        return self.directory / f"{fingerprint}.trace"

    def _decode(self, path: pathlib.Path, fingerprint: str
                ) -> tuple[CapturedTrace | None, str | None]:
        """``(trace, None)``, ``(None, reason)``, or ``(None, None)``."""
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return None, None
        except OSError as exc:
            return None, f"unreadable: {exc}"
        try:
            captured = deserialize(data)
        except TraceFormatError as exc:
            return None, str(exc)
        if captured.fingerprint != fingerprint:
            return None, (f"fingerprint field {captured.fingerprint!r} "
                          "does not match the filename (renamed or copied "
                          "container)")
        return captured, None

    def get(self, fingerprint: str) -> CapturedTrace | None:
        """The stored trace, or None on a miss.

        A defective container is also a miss, but it is quarantined
        first so the evidence survives recomputation.
        """
        captured, defect = self._decode(self.path_for(fingerprint),
                                        fingerprint)
        if defect is not None:
            self.quarantine(fingerprint, defect)
            return None
        return captured

    def put(self, captured: CapturedTrace) -> None:
        """Persist a captured trace atomically under its fingerprint."""
        _atomic_write_bytes(self.path_for(captured.fingerprint),
                            serialize(captured))

    def quarantine(self, fingerprint: str, reason: str) -> pathlib.Path | None:
        """Move a defective container into ``corrupt/`` with a reason."""
        source = self.path_for(fingerprint)
        target = self.corrupt_directory / source.name
        self.corrupt_directory.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(source, target)
        except OSError:
            return None  # vanished (or unmovable) concurrently
        atomic_write_json(target.with_suffix(".reason"),
                          {"fingerprint": fingerprint, "reason": reason})
        return target

    def entries(self) -> list[dict]:
        """Header metadata for every stored trace, filename-sorted."""
        listing = []
        if not self.directory.is_dir():
            return listing
        for path in sorted(self.directory.glob("*.trace")):
            captured, defect = self._decode(path, path.stem)
            if captured is None:
                continue  # vanished or defective; doctor reports those
            listing.append({
                "fingerprint": captured.fingerprint,
                "label": captured.label,
                "uops": captured.total_uops(),
                "bytes": path.stat().st_size,
                "meta": captured.meta,
            })
        return listing

    def remove(self, prefix: str) -> int:
        """Unlink entries whose fingerprint starts with ``prefix``."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in sorted(self.directory.glob("*.trace")):
            if path.stem.startswith(prefix):
                try:
                    path.unlink()
                    removed += 1
                except FileNotFoundError:
                    pass
        return removed

    def clear(self) -> int:
        """Remove every current-version trace; returns how many."""
        return self.remove("")

    def doctor(self, repair: bool = True) -> dict:
        """Scan every container; quarantine (or just report) defects."""
        scanned = 0
        healthy = 0
        defects: list[tuple[str, str]] = []
        if self.directory.is_dir():
            for path in sorted(self.directory.glob("*.trace")):
                captured, defect = self._decode(path, path.stem)
                if captured is None and defect is None:
                    continue  # removed while we scanned
                scanned += 1
                if defect is None:
                    healthy += 1
                    continue
                defects.append((path.stem, defect))
                if repair:
                    self.quarantine(path.stem, defect)
        corrupt = len(list(self.corrupt_directory.glob("*.trace"))) \
            if self.corrupt_directory.is_dir() else 0
        return {
            "path": str(self.directory),
            "scanned": scanned,
            "healthy": healthy,
            "defects": defects,
            "repaired": repair,
            "corrupt_entries": corrupt,
            "stale_versions": self._stale_versions(),
        }

    def _stale_versions(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(
            p.name for p in self.root.glob("traces-v*")
            if p.is_dir() and p != self.directory
        )

    def stats(self) -> dict:
        """Entry count, total bytes, and stale-version leftovers."""
        entries = 0
        nbytes = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.trace"):
                try:
                    nbytes += path.stat().st_size
                except FileNotFoundError:
                    continue  # unlinked by a concurrent clear()
                entries += 1
        corrupt = len(list(self.corrupt_directory.glob("*.trace"))) \
            if self.corrupt_directory.is_dir() else 0
        return {
            "path": str(self.directory),
            "entries": entries,
            "bytes": nbytes,
            "corrupt_entries": corrupt,
            "stale_versions": self._stale_versions(),
        }

"""Capture-once / replay-many trace pipeline.

The paper's methodology (§3.1) fixes the *software* behavior and varies
the *hardware*: Figures 3–5 re-measure one workload execution against
many core/cache/prefetcher configurations.  A workload's micro-op
stream depends only on ``(workload, seed, window, fault_plan)`` — none
of the machine dimensions those sweeps vary — so this package splits
every measurement into two stages:

* **capture** (:mod:`repro.trace.capture`) drains the app's warm and
  measurement streams exactly once per trace key into a compact
  columnar encoding (:mod:`repro.trace.codec`), under the runaway-trace
  watchdog;
* **replay** (:mod:`repro.trace.replay`) feeds the decoded stream — a
  byte-identical :class:`~repro.uarch.uop.MicroOp` sequence — into a
  fresh :class:`~repro.uarch.hierarchy.MemoryHierarchy` and core,
  guard-free, once per machine configuration.

Captured traces persist in an on-disk store
(:mod:`repro.trace.store`) keyed by a canonical fingerprint, and
:mod:`repro.trace.pipeline` memoizes them in-process, so a sweep is
O(traces) + O(cells · replay) instead of O(cells · generate).
Timing-entangled runs (SMT, multi-core chips) keep live generation via
:mod:`repro.trace.live`, behind the same source protocol.
"""

from repro.trace.capture import CapturedTrace, TraceKey, capture
from repro.trace.codec import TRACE_SCHEMA, EncodedStream, encode_stream
from repro.trace.pipeline import TAPS, materialize, replay
from repro.trace.replay import ReplaySource, TraceSource
from repro.trace.store import TraceFormatError, TraceStore

__all__ = [
    "TRACE_SCHEMA",
    "EncodedStream",
    "encode_stream",
    "TraceKey",
    "CapturedTrace",
    "capture",
    "TraceSource",
    "ReplaySource",
    "TraceStore",
    "TraceFormatError",
    "TAPS",
    "materialize",
    "replay",
]

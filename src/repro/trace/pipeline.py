"""The capture/replay pipeline: memoization, store plumbing, and taps.

:func:`materialize` is the single entry point the runner uses to obtain
a trace: an in-process memo (content-keyed by fingerprint, so always
safe to consult) in front of the on-disk :class:`~repro.trace.store.TraceStore`,
in front of a fresh :func:`~repro.trace.capture.capture`.  The memo is
bounded by encoded bytes (large enough for a full figure sweep's
distinct traces) and survives ``use_cache=False`` runs because a trace
is a pure function of its key: skipping the memo could only change
wall-clock time, never a counter.

:data:`TAPS` is the pipeline's observability surface: per-stage
counters and wall-clock accumulators (capture, encode, store, decode,
replay) surfaced by ``python -m repro trace stats`` and appended to
sweep progress output.  Timings use ``time.perf_counter`` — they are
reported, never used to make a decision, so determinism holds.

:func:`materialize_cells` is the sweep-side hook: given a cell list it
captures each *distinct* trace key exactly once before the cells fan
out, so parallel workers find every trace in the store and a sweep
performs O(traces) captures rather than O(cells).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, fields, replace
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from repro.trace.capture import CapturedTrace, TraceKey, capture
from repro.trace.replay import replay_trace, selected_replay_path
from repro.trace.store import TraceStore

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.apps.base import ServerApp
    from repro.core.sweep import Cell
    from repro.uarch.core import CoreResult
    from repro.uarch.params import MachineParams

__all__ = ["TraceTaps", "TAPS", "materialize", "replay", "reset",
           "trace_keys_for_cells", "materialize_cells"]


@dataclass
class TraceTaps:
    """Per-stage pipeline counters and wall-clock accumulators."""

    captures: int = 0
    capture_uops: int = 0
    capture_seconds: float = 0.0
    capture_errors: int = 0
    encoded_bytes: int = 0
    memo_hits: int = 0
    store_hits: int = 0
    store_misses: int = 0
    store_seconds: float = 0.0
    replays: int = 0
    replay_uops: int = 0
    replay_seconds: float = 0.0
    fast_replays: int = 0
    general_replays: int = 0

    def reset(self) -> None:
        """Zero every tap (test isolation; ``trace stats`` baselines)."""
        for f in fields(self):
            setattr(self, f.name, f.default)

    def capture_rate(self) -> float:
        """Capture+encode throughput in uops/s (0 before any capture)."""
        return (self.capture_uops / self.capture_seconds
                if self.capture_seconds > 0 else 0.0)

    def replay_rate(self) -> float:
        """Decode+replay throughput in uops/s (0 before any replay)."""
        return (self.replay_uops / self.replay_seconds
                if self.replay_seconds > 0 else 0.0)

    def summary(self) -> str:
        """One line for sweep progress output and ``trace stats``."""
        return (
            f"trace pipeline: {self.captures} capture(s) "
            f"({self.capture_uops} uops, {self.capture_seconds:.2f}s, "
            f"{self.capture_rate():,.0f} uops/s), "
            f"{self.replays} replay(s) "
            f"({self.replay_uops} uops, {self.replay_seconds:.2f}s, "
            f"{self.replay_rate():,.0f} uops/s, "
            f"{self.fast_replays} columnar / "
            f"{self.general_replays} general), "
            f"store {self.store_hits} hit(s) / "
            f"{self.store_misses} miss(es), "
            f"{self.memo_hits} memo hit(s)"
        )


#: Process-global taps; reset alongside the runner cache.
TAPS = TraceTaps()

#: Fingerprint → (trace, producing app or None).  Content-keyed, so a
#: hit is always observationally identical to a fresh capture.
_MEMO: OrderedDict[str, tuple[CapturedTrace, "ServerApp | None"]] = \
    OrderedDict()
#: Eviction is by encoded bytes, not entry count: under ``--no-cache``
#: the memo is the *only* capture dedup, and Figure 4's size-major cell
#: order cycles through every workload before reusing one — a small
#: count-based LRU would evict each trace just before its next use and
#: re-capture O(cells) times.  The budget comfortably holds a full
#: figure sweep's distinct traces (~15 workloads x ~6 MB at default
#: windows) while still bounding a long-lived process.
_MEMO_BUDGET_BYTES = 256 * 1024 * 1024


def reset() -> None:
    """Drop the trace memo and zero the taps (test isolation)."""
    _MEMO.clear()
    TAPS.reset()


def _tick() -> float:
    # repro-lint: sanitizer -- feeds only the TAPS latency taps, never result data
    """Wall-clock read for the observability taps.

    Isolated (and blessed for the whole-program taint pass) so the
    harness-timing exemption is explicit: anything else in this module
    that wants a clock has to go through here or answer to the linter.
    """
    return perf_counter()


def _memo_put(fingerprint: str,
              entry: tuple[CapturedTrace, "ServerApp | None"]) -> None:
    _MEMO[fingerprint] = entry
    _MEMO.move_to_end(fingerprint)
    total = sum(trace.nbytes() for trace, _ in _MEMO.values())
    while total > _MEMO_BUDGET_BYTES and len(_MEMO) > 1:
        _, (evicted, _) = _MEMO.popitem(last=False)
        total -= evicted.nbytes()


def materialize(key: TraceKey, use_store: bool = True,
                require_app: bool = False
                ) -> tuple[CapturedTrace, "ServerApp | None"]:
    """The trace for ``key``: memo, then store, then fresh capture.

    ``require_app=True`` forces a path that yields the live app that
    produced the trace (the faults figure reads its service metrics);
    a memo or store hit without one falls through to a fresh capture.
    ``use_store=False`` skips the on-disk store in both directions.
    """
    fingerprint = key.fingerprint()
    hit = _MEMO.get(fingerprint)
    if hit is not None and not (require_app and hit[1] is None):
        _MEMO.move_to_end(fingerprint)
        TAPS.memo_hits += 1
        return hit
    if use_store and not require_app:
        store = TraceStore()
        started = _tick()
        captured = store.get(fingerprint)
        TAPS.store_seconds += _tick() - started
        if captured is not None:
            TAPS.store_hits += 1
            _memo_put(fingerprint, (captured, None))
            return captured, None
        TAPS.store_misses += 1
    started = _tick()
    captured, app = capture(key)
    TAPS.captures += 1
    TAPS.capture_seconds += _tick() - started
    TAPS.capture_uops += captured.total_uops()
    TAPS.encoded_bytes += captured.nbytes()
    if use_store:
        TraceStore().put(captured)
    _memo_put(fingerprint, (captured, app))
    return captured, app


def replay(captured: CapturedTrace,
           params: "MachineParams") -> "CoreResult":
    """Tap-instrumented :func:`~repro.trace.replay.replay_trace`."""
    started = _tick()
    result = replay_trace(captured, params)
    TAPS.replays += 1
    TAPS.replay_seconds += _tick() - started
    TAPS.replay_uops += captured.window_uops()
    if selected_replay_path(captured, params) == "columnar":
        TAPS.fast_replays += 1
    else:
        TAPS.general_replays += 1
    return result


def trace_keys_for_cells(cells: Sequence["Cell"]) -> list[TraceKey]:
    """The distinct trace keys a cell list will replay, in cell order.

    Only ``single`` and ``members`` cells are trace-driven; ``smt``,
    ``smt-members``, and ``chip`` cells interleave generation with core
    timing and stay live.  Member keys mirror the runner's group
    expansion (halved windows per member) so the keys match what
    ``run_workload_members`` asks for.
    """
    from repro.core.runner import _GROUP_MEMBERS

    keys: list[TraceKey] = []
    seen: set[str] = set()
    for cell in cells:
        if cell.kind == "single":
            cell_keys = [TraceKey.from_config(cell.name, cell.config)]
        elif cell.kind == "members":
            members = _GROUP_MEMBERS.get(cell.name)
            if members is None:
                cell_keys = [TraceKey.from_config(cell.name, cell.config)]
            else:
                member_config = replace(
                    cell.config,
                    window_uops=cell.config.window_uops // 2,
                    warm_uops=cell.config.warm_uops // 2,
                )
                cell_keys = [
                    TraceKey.from_config(cell.name, member_config,
                                         member=member)
                    for member in members
                ]
        else:
            cell_keys = []
        for key in cell_keys:
            fingerprint = key.fingerprint()
            if fingerprint not in seen:
                seen.add(fingerprint)
                keys.append(key)
    return keys


def materialize_cells(cells: Sequence["Cell"],
                      use_store: bool = True) -> int:
    """Capture every distinct trace a cell list needs, exactly once.

    Best-effort by design: a workload that cannot be captured (unknown
    name in a synthetic test cell, a wedged serve loop) is skipped
    here and fails later inside its own supervised cell, where the
    engine's retry/reporting machinery owns the failure.  Returns the
    number of keys materialized.
    """
    done = 0
    for key in trace_keys_for_cells(cells):
        try:
            materialize(key, use_store=use_store)
        except Exception:
            TAPS.capture_errors += 1
            continue  # the owning cell will surface the real error
        done += 1
    return done

"""Columnar micro-op encoding.

A measurement window is ~10⁵ dynamic micro-ops; holding them as Python
objects costs ~200 B each and decoding them from JSON would dominate
replay time.  :class:`EncodedStream` instead stores one ``array.array``
per :class:`~repro.uarch.uop.MicroOp` field (parallel columns), with
the variable-length ``deps`` tuples flattened into a single column plus
a per-op count — ~28 B per op, serializable as raw bytes, and decodable
at millions of ops per second.

``TRACE_SCHEMA`` versions both the encoding *and* the meaning of a
captured stream.  It participates in every trace fingerprint and in
:func:`repro.core.sweep.config_fingerprint`, so a codec change can
never serve a stale trace — or a timing result derived from one.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator

from repro.uarch.uop import MicroOp

__all__ = ["TRACE_SCHEMA", "COLUMNS", "EncodedStream", "encode_stream"]

#: Bump when the column set, the flag bits, or the semantics of any
#: encoded field change.  Versions the store directory, every trace
#: fingerprint, and (via ``config_fingerprint``) every cached result.
TRACE_SCHEMA = 1

_OS_BIT = 1
_TAKEN_BIT = 2

#: Column name → ``array`` typecode, in serialization order.  ``flags``
#: packs ``is_os`` (bit 0) and ``taken`` (bit 1); ``deps`` is the
#: flattened dependency column indexed through ``dep_count``.
COLUMNS = (
    ("kind", "B"),
    ("pc", "Q"),
    ("addr", "Q"),
    ("seq", "Q"),
    ("tid", "H"),
    ("flags", "B"),
    ("target", "Q"),
    ("dep_count", "H"),
    ("deps", "Q"),
)


class EncodedStream:
    """One micro-op stream as parallel columns.

    Append-only during capture; :meth:`decode` yields ``MicroOp``
    objects field-identical to the ones that were appended.  Field
    values outside a column's range (negative addresses, a dependency
    list longer than 2¹⁶) raise ``OverflowError`` at append time —
    capture must fail loudly, never truncate.
    """

    __slots__ = tuple(name for name, _ in COLUMNS) + ("_batch",)

    def __init__(self) -> None:
        for name, typecode in COLUMNS:
            setattr(self, name, array(typecode))
        # Lazily-built columnar view (see repro.trace.columns.batch_for);
        # never serialized, compared, or counted against nbytes().
        self._batch = None

    def __len__(self) -> int:
        return len(self.kind)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EncodedStream):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name, _ in COLUMNS
        )

    __hash__ = None  # mutable container

    def nbytes(self) -> int:
        """Total payload bytes across every column."""
        return sum(
            len(column) * column.itemsize for column in self.columns()
        )

    def columns(self) -> list[array]:
        """The column arrays, in ``COLUMNS`` order."""
        return [getattr(self, name) for name, _ in COLUMNS]

    def append(self, uop: MicroOp) -> None:
        """Append one micro-op's fields to the columns."""
        self._batch = None  # a stale columnar view must never survive
        self.kind.append(uop.kind)
        self.pc.append(uop.pc)
        self.addr.append(uop.addr)
        self.seq.append(uop.seq)
        self.tid.append(uop.tid)
        self.flags.append(
            (_OS_BIT if uop.is_os else 0) | (_TAKEN_BIT if uop.taken else 0)
        )
        self.target.append(uop.target)
        self.dep_count.append(len(uop.deps))
        self.deps.extend(uop.deps)

    def decode(self) -> Iterator[MicroOp]:
        """Yield the stream back as ``MicroOp`` objects.

        The reconstruction is exact: every field (including dependency
        tuples and the OS/taken flags) round-trips, so a core replaying
        a decoded stream counts identically to one fed the live stream.
        """
        deps = self.deps
        offset = 0
        for i in range(len(self.kind)):
            count = self.dep_count[i]
            if count:
                dep_tuple = tuple(deps[offset:offset + count])
                offset += count
            else:
                dep_tuple = ()
            flags = self.flags[i]
            yield MicroOp(
                kind=self.kind[i],
                pc=self.pc[i],
                addr=self.addr[i],
                deps=dep_tuple,
                seq=self.seq[i],
                is_os=bool(flags & _OS_BIT),
                tid=self.tid[i],
                taken=bool(flags & _TAKEN_BIT),
                target=self.target[i],
            )

    @classmethod
    def from_columns(cls, columns: dict[str, bytes]) -> "EncodedStream":
        """Rebuild a stream from raw per-column bytes (store reads)."""
        stream = cls()
        for name, _ in COLUMNS:
            getattr(stream, name).frombytes(columns[name])
        return stream


def encode_stream(uops: Iterable[MicroOp]) -> EncodedStream:
    """Drain ``uops`` into a new :class:`EncodedStream`."""
    stream = EncodedStream()
    for uop in uops:
        stream.append(uop)
    return stream

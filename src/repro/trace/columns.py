"""Batched decode front-end: column views the timing loop reads directly.

:class:`~repro.trace.codec.EncodedStream` stores micro-ops as
``array.array`` columns.  Decoding them back into
:class:`~repro.uarch.uop.MicroOp` objects costs one object allocation
and nine attribute stores per dynamic micro-op — at replay volumes
(10⁵ ops per measurement, one measurement per sweep cell) that
per-uop dispatch dominates the Figure 4 wall clock.

:class:`ColumnBatch` is the batched alternative: every column is
materialized *once* as a plain Python list (``array.tolist()`` runs in
C, and list indexing hands back cached ``int`` objects instead of
boxing a fresh one per read), and the fast replay loop in
:mod:`repro.uarch.fastpath` indexes the lists positionally.  Nothing is
re-decoded per machine configuration: a Figure 4 sweep replays the same
captured stream against ~6 LLC sizes, and :func:`batch_for` memoizes
the batch on the stream itself, so the ``tolist`` pass happens once per
capture, not once per cell.  Per-PC line identifiers — the only decoded
quantity that depends on a machine parameter — are memoized per line
shift in :meth:`ColumnBatch.lines`.

Batches are built from *finished* captures only.  An
``EncodedStream`` is append-only during capture and immutable
afterwards (the store hands out fresh instances), which is what makes
the memoization sound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.trace.codec import EncodedStream

__all__ = ["ColumnBatch", "batch_for"]


class ColumnBatch:
    """One encoded stream as positional Python lists.

    Field semantics are exactly those of the owning stream's columns
    (see :data:`repro.trace.codec.COLUMNS`): ``flags`` packs ``is_os``
    (bit 0) and ``taken`` (bit 1); ``deps`` is the flattened dependency
    column walked through ``dep_counts``.
    """

    __slots__ = ("length", "kinds", "pcs", "addrs", "seqs", "flags",
                 "targets", "dep_counts", "deps", "_lines", "_dep_idx",
                 "_access_ops", "_os_flags", "_line_starts")

    def __init__(self, stream: "EncodedStream") -> None:
        self.length = len(stream)
        self.kinds: List[int] = stream.kind.tolist()
        self.pcs: List[int] = stream.pc.tolist()
        self.addrs: List[int] = stream.addr.tolist()
        self.seqs: List[int] = stream.seq.tolist()
        self.flags: List[int] = stream.flags.tolist()
        self.targets: List[int] = stream.target.tolist()
        self.dep_counts: List[int] = stream.dep_count.tolist()
        self.deps: List[int] = stream.deps.tolist()
        self._lines: dict[int, List[int]] = {}
        self._dep_idx: List[int] | None = None
        self._access_ops: dict[int, list] = {}
        self._os_flags: List[int] | None = None
        self._line_starts: dict[int, bytearray] = {}

    def lines(self, line_shift: int) -> List[int]:
        """Per-op instruction-line ids (``pc >> line_shift``), memoized.

        The shift is the one machine-dependent piece of per-PC decode
        work; memoizing per shift means a sweep that replays this batch
        across many same-line-size configurations computes it once.
        """
        cached = self._lines.get(line_shift)
        if cached is None:
            cached = [pc >> line_shift for pc in self.pcs]
            self._lines[line_shift] = cached
        return cached

    def access_ops(self, line_shift: int) -> list:
        """The functional-warming access sequence, memoized per shift.

        One ``(addr, is_write, is_instr, is_os)`` tuple per hierarchy
        access the warming walk performs: an instruction fetch for each
        new code line plus every load and store, in stream order —
        exactly what :func:`repro.trace.replay.functional_replay` does
        per decoded micro-op, with the per-op branching hoisted out of
        the per-replay loop (a sweep warms the same stream once per
        machine configuration).
        """
        cached = self._access_ops.get(line_shift)
        if cached is None:
            cached = []
            append = cached.append
            kinds = self.kinds
            pcs = self.pcs
            addrs = self.addrs
            flags = self.flags
            lines = self.lines(line_shift)
            last_line = -1
            for i in range(self.length):
                line = lines[i]
                if line != last_line:
                    last_line = line
                    append((pcs[i], False, True, flags[i] & 1))
                kind = kinds[i]
                if kind == 1:  # LOAD
                    append((addrs[i], False, False, flags[i] & 1))
                elif kind == 2:  # STORE
                    append((addrs[i], True, False, flags[i] & 1))
            self._access_ops[line_shift] = cached
        return cached

    def line_starts(self, line_shift: int) -> bytearray:
        """Ops that begin a new instruction line, memoized per shift.

        ``line_starts[i]`` is 1 iff op ``i``'s code line differs from op
        ``i - 1``'s (op 0 always starts a line).  The fetch stage
        processes ops strictly in order, so this positional flag is
        exactly its ``line != last_line`` test, precomputed.
        """
        cached = self._line_starts.get(line_shift)
        if cached is None:
            lines = self.lines(line_shift)
            cached = bytearray(self.length)
            prev = -1
            for i, line in enumerate(lines):
                if line != prev:
                    cached[i] = 1
                    prev = line
            self._line_starts[line_shift] = cached
        return cached

    def os_flags(self) -> List[int]:
        """Per-op OS bit (``flags & 1``) as its own column, memoized.

        The replay loop reads the OS bit several times per op (commit
        attribution, access classification, stall accounting); unpacking
        it once trades one list for a bit-test per read.
        """
        cached = self._os_flags
        if cached is None:
            cached = [f & 1 for f in self.flags]
            self._os_flags = cached
        return cached

    def dep_indexes(self) -> List[int]:
        """The ``deps`` column with producer seqs mapped to column
        indexes (``-1`` for producers outside this stream), memoized.

        Sequence numbers are unique and a producer always precedes its
        consumers, so the seq → position map is a static property of
        the capture — the replay loop can test "producer still in
        flight" as ``dep_idx >= 0 and not completed[dep_idx]`` instead
        of maintaining a per-run seq-keyed dict.
        """
        cached = self._dep_idx
        if cached is None:
            position = {seq: i for i, seq in enumerate(self.seqs)}
            get = position.get
            cached = [get(seq, -1) for seq in self.deps]
            self._dep_idx = cached
        return cached


def batch_for(stream: "EncodedStream") -> ColumnBatch:
    """The (memoized) :class:`ColumnBatch` of a finished capture."""
    batch = stream._batch
    if batch is None:
        batch = ColumnBatch(stream)
        stream._batch = batch
    return batch

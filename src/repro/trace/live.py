"""Live trace sources: generation that cannot be captured ahead of time.

SMT and multi-core measurements interleave thread streams at the
core's cycle granularity, and each pull mutates the shared app state
(its RNG, its dataset) — the stream *content* depends on core timing,
so those runs cannot be captured once and replayed across machine
configurations.  They still speak the pipeline's
:class:`~repro.trace.replay.TraceSource` protocol through
:class:`LiveSource`, and their warming and guarding go through the
same helpers as capture, so the watchdog and the layering rule hold
everywhere.

This module (with :mod:`repro.trace.capture` and ``core/runner.py``)
is the sanctioned home of direct ``app.trace()`` consumption — the
``trace-layer`` lint rule flags it anywhere else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Sequence

from repro.faults.watchdog import guard_trace, trace_budget
from repro.trace.capture import fill_ranges_for
from repro.trace.replay import fill_lines, functional_replay
from repro.uarch.hierarchy import MemoryHierarchy
from repro.uarch.uop import MicroOp

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.apps.base import ServerApp

__all__ = ["LiveSource", "warm_app", "live_stream", "live_segments",
           "take_uops"]


def warm_app(app: "ServerApp", hierarchy: MemoryHierarchy,
             trace_uops: int = 40_000) -> None:
    """Functionally warm ``hierarchy`` from ``app``, live.

    The same walk replay performs from a capture: install the fill
    ranges, then replay a short live trace without core timing.  This
    is the implementation behind :meth:`ServerApp.warm`.
    """
    fill_lines(hierarchy, fill_ranges_for(app))
    functional_replay(hierarchy, app.trace(0, trace_uops))


def live_stream(app: "ServerApp", tid: int, budget: int,
                label: str) -> Iterator[MicroOp]:
    """A guarded live measurement stream for one hardware thread.

    Live generation runs unbounded app code, so — like capture — it is
    always wrapped in the runaway-trace watchdog.
    """
    return guard_trace(app.trace(tid, budget), trace_budget(budget), label)


def live_segments(app: "ServerApp", tid: int, budget: int,
                  segments: int) -> List[Iterator[MicroOp]]:
    """Split a live budget into lazily-generated trace chunks
    (round-robin multi-core interleaving; behind
    :meth:`ServerApp.trace_segments`)."""
    per_segment = max(1, budget // segments)
    return [app.trace(tid, per_segment) for _ in range(segments)]


def take_uops(app: "ServerApp", tid: int, budget: int) -> List[MicroOp]:
    """Materialize ``budget`` micro-ops of a live trace (debug dumps)."""
    return list(app.trace(tid, budget))


class LiveSource:
    """A :class:`~repro.trace.replay.TraceSource` over a live app.

    ``budgets`` gives one measurement budget per hardware thread;
    every stream is watchdog-guarded.  Used for SMT runs, where two
    threads of one app must be pulled in core-interleaved order.
    """

    def __init__(self, app: "ServerApp", budgets: Sequence[int],
                 label: str, warm_uops: int = 40_000) -> None:
        self.app = app
        self.budgets = tuple(budgets)
        self.label = label
        self.warm_uops = warm_uops

    def warm_into(self, hierarchy: MemoryHierarchy) -> None:
        """Live functional warming (see :func:`warm_app`)."""
        warm_app(self.app, hierarchy, self.warm_uops)

    def streams(self) -> List[Iterator[MicroOp]]:
        """One guarded live stream per configured thread budget."""
        return [
            live_stream(self.app, tid, budget, self.label)
            for tid, budget in enumerate(self.budgets)
        ]
